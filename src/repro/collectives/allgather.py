"""Allgather algorithms (Open MPI ``coll_tuned`` numbering).

====  ==================  ============================================
id    name                structure
====  ==================  ============================================
1     linear              gather to rank 0 + broadcast (basic)
2     bruck               log2(p) rounds of doubling block trains
3     recursive_doubling  butterfly with non-power-of-two folding
4     ring                p-1 neighbour shifts
5     neighbor_exchange   p/2 rounds of paired 2-block swaps (even p)
6     two_proc            single exchange (p == 2 only)
====  ==================  ============================================

Extension beyond the paper's Table II (see ``CollectiveKind``).
Verification payloads are per-rank blocks; a correct allgather leaves
``{r: ("blk", r) for all r}`` on every rank. ``nbytes`` is the
per-rank contribution (so the gathered buffer is ``p * nbytes``).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.collectives.base import (
    AlgorithmConfig,
    CollectiveAlgorithm,
    CollectiveKind,
)
from repro.collectives.patterns import (
    allgather_doubling_rounds,
    exchange,
    phase_tag,
    ring_rounds,
)
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.simulator.engine import Recv, Send, SimResult
from repro.simulator.fastsim import Round, linear_time, round_time


class _AllgatherBase(CollectiveAlgorithm):
    """Shared verification: every rank holds every rank's block."""

    def verify_result(self, topo: Topology, nbytes: int, result: SimResult) -> None:
        expected = {r: ("blk", r) for r in range(topo.size)}
        for rank, output in enumerate(result.outputs):
            assert output == expected, (
                f"{self.config.label}: rank {rank} gathered {output!r}"
            )


def _own(rank: int) -> dict[int, Any]:
    return {rank: ("blk", rank)}


class AllgatherLinear(_AllgatherBase):
    """Algorithm 1: gather everything to rank 0, broadcast the result."""

    def __init__(self) -> None:
        super().__init__(
            AlgorithmConfig.make(CollectiveKind.ALLGATHER, 1, "linear")
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        peers = list(range(1, topo.size))
        up = linear_time(machine, topo, 0, peers, nbytes, gather=True)
        down = linear_time(machine, topo, 0, peers, nbytes * topo.size)
        return up + down

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        p = topo.size

        def factory(rank: int):
            def prog():
                if rank == 0:
                    gathered = _own(0)
                    for src in range(1, p):
                        got = yield Recv(src, tag=phase_tag(0))
                        gathered.update(got)
                    for dst in range(1, p):
                        yield Send(dst, p * nbytes, dict(gathered),
                                   tag=phase_tag(1))
                    return gathered
                yield Send(0, nbytes, _own(rank), tag=phase_tag(0))
                final = yield Recv(0, tag=phase_tag(1))
                return dict(final)

            return prog()

        return [factory] * p


class AllgatherBruck(_AllgatherBase):
    """Algorithm 2: doubling block trains shifted around the ring."""

    def __init__(self) -> None:
        super().__init__(
            AlgorithmConfig.make(CollectiveKind.ALLGATHER, 2, "bruck")
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        # Invariant: after each round every rank holds a train of
        # `have` consecutive blocks; it ships min(have, p - have) of
        # them a distance of `have` backwards.
        p = topo.size
        rounds: list[Round] = []
        ranks = np.arange(p)
        have = 1
        while have < p:
            count = min(have, p - have)
            rounds.append(
                Round.make(ranks, (ranks - have) % p, count * nbytes)
            )
            have += count
        return round_time(machine, topo, rounds)

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        p = topo.size

        def factory(rank: int):
            def prog():
                gathered = _own(rank)
                have = 1
                while have < p:
                    count = min(have, p - have)
                    # We hold blocks rank..rank+have-1; the peer at
                    # rank-have needs the first `count` of our train.
                    payload = {
                        (rank + i) % p: gathered[(rank + i) % p]
                        for i in range(count)
                    }
                    got = yield from exchange(
                        (rank - have) % p, (rank + have) % p,
                        nbytes_send=count * nbytes,
                        payload=payload, tag=phase_tag(0, have),
                    )
                    gathered.update(got)
                    have += count
                return gathered

            return prog()

        return [factory] * p


class AllgatherRecursiveDoubling(_AllgatherBase):
    """Algorithm 3: butterfly exchanges with non-power-of-two folding."""

    def __init__(self) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.ALLGATHER, 3, "recursive_doubling"
            )
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        return round_time(
            machine, topo, allgather_doubling_rounds(topo, nbytes * topo.size)
        )

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        p = topo.size
        pof2 = 1 << (p.bit_length() - 1)
        rem = p - pof2

        def factory(rank: int):
            def prog():
                gathered = _own(rank)
                if rem and rank < 2 * rem and rank % 2 == 1:
                    yield Send(rank - 1, nbytes, gathered, tag=phase_tag(0))
                    final = yield Recv(rank - 1, tag=phase_tag(2))
                    return dict(final)
                if rem and rank < 2 * rem:
                    extra = yield Recv(rank + 1, tag=phase_tag(0))
                    gathered.update(extra)
                vrank = rank // 2 if rank < 2 * rem else rank - rem

                def real(v: int) -> int:
                    return v * 2 if v < rem else v + rem

                dist = 1
                while dist < pof2:
                    peer = real(vrank ^ dist)
                    got = yield from exchange(
                        peer, peer,
                        nbytes_send=len(gathered) * nbytes,
                        payload=dict(gathered), tag=phase_tag(1, dist),
                    )
                    gathered.update(got)
                    dist <<= 1
                if rem and rank < 2 * rem:
                    yield Send(rank + 1, p * nbytes, dict(gathered),
                               tag=phase_tag(2))
                return gathered

            return prog()

        return [factory] * p


class AllgatherRing(_AllgatherBase):
    """Algorithm 4: p-1 neighbour shifts of one block each."""

    def __init__(self) -> None:
        super().__init__(
            AlgorithmConfig.make(CollectiveKind.ALLGATHER, 4, "ring")
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        return round_time(
            machine, topo, ring_rounds(topo, nbytes, topo.size - 1)
        )

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        p = topo.size

        def factory(rank: int):
            def prog():
                gathered = _own(rank)
                nxt, prev = (rank + 1) % p, (rank - 1) % p
                send_block = rank
                for step in range(p - 1):
                    got = yield from exchange(
                        nxt, prev, nbytes_send=nbytes,
                        payload={send_block: gathered[send_block]},
                        tag=phase_tag(0, step),
                    )
                    (recv_block, value), = got.items()
                    gathered[recv_block] = value
                    send_block = recv_block
                return gathered

            return prog()

        return [factory] * p


class AllgatherNeighborExchange(_AllgatherBase):
    """Algorithm 5: paired neighbour swaps (requires an even p).

    Ranks pair alternately left/right; after the first single-block
    swap every round exchanges the two freshest blocks, completing in
    p/2 rounds — fewer, fatter messages than the ring.
    """

    def __init__(self) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.ALLGATHER, 5, "neighbor_exchange"
            )
        )

    def supported(self, topo: Topology, nbytes: int) -> bool:
        return topo.size % 2 == 0 or topo.size == 1

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        p = topo.size
        if p <= 1:
            return 0.0
        ranks = np.arange(p)
        even = ranks % 2 == 0
        first_peer = np.where(even, (ranks + 1) % p, (ranks - 1) % p)
        rounds = [Round.make(ranks, first_peer, nbytes)]
        for step in range(1, p // 2):
            if step % 2 == 1:
                peer = np.where(even, (ranks - 1) % p, (ranks + 1) % p)
            else:
                peer = first_peer
            rounds.append(Round.make(ranks, peer, 2 * nbytes))
        return round_time(machine, topo, rounds)

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        p = topo.size

        def factory(rank: int):
            def prog():
                gathered = _own(rank)
                if p == 1:
                    return gathered
                even = rank % 2 == 0
                right = (rank + 1) % p
                left = (rank - 1) % p
                first = right if even else left
                got = yield from exchange(
                    first, first, nbytes_send=nbytes,
                    payload=_own(rank), tag=phase_tag(0),
                )
                gathered.update(got)
                last_two = dict(gathered)
                for step in range(1, p // 2):
                    if step % 2 == 1:
                        peer = left if even else right
                    else:
                        peer = first
                    got = yield from exchange(
                        peer, peer, nbytes_send=2 * nbytes,
                        payload=dict(last_two), tag=phase_tag(1, step),
                    )
                    gathered.update(got)
                    last_two = dict(got)
                return gathered

            return prog()

        return [factory] * p


class AllgatherTwoProc(_AllgatherBase):
    """Algorithm 6: the dedicated two-process exchange."""

    def __init__(self) -> None:
        super().__init__(
            AlgorithmConfig.make(CollectiveKind.ALLGATHER, 6, "two_proc")
        )

    def supported(self, topo: Topology, nbytes: int) -> bool:
        return topo.size == 2

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        return round_time(
            machine, topo, [Round.make([0, 1], [1, 0], nbytes)]
        )

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        def factory(rank: int):
            def prog():
                peer = 1 - rank
                got = yield from exchange(
                    peer, peer, nbytes_send=nbytes, payload=_own(rank),
                    tag=phase_tag(0),
                )
                out = _own(rank)
                out.update(got)
                return out

            return prog()

        return [factory] * 2
