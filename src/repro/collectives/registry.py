"""Instantiate collective algorithms from configuration ids.

The registry is the inverse of :class:`AlgorithmConfig`: given the
``u_{j,l}`` identifier stored in a dataset (or predicted by a model),
it reconstructs the runnable algorithm object.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.collectives import allgather, allreduce, alltoall, bcast, reduce
from repro.collectives.base import AlgorithmConfig, CollectiveAlgorithm, CollectiveKind
from repro.collectives.hierarchical import HierarchicalAllreduce, HierarchicalBcast

_BCAST: dict[str, Callable[..., CollectiveAlgorithm]] = {
    "linear": lambda **kw: bcast.BcastLinear(),
    "chain": lambda **kw: bcast.BcastChain(kw["segsize"], kw["chains"]),
    "pipeline": lambda **kw: bcast.BcastPipeline(kw["segsize"]),
    "split_binary": lambda **kw: bcast.BcastSplitBinary(kw["segsize"]),
    "binary": lambda **kw: bcast.BcastBinary(kw["segsize"]),
    "binomial": lambda **kw: bcast.BcastBinomial(kw["segsize"]),
    "knomial": lambda **kw: bcast.BcastKnomial(kw["segsize"], kw["radix"]),
    "scatter_allgather": lambda **kw: bcast.BcastScatterAllgather(),
    "scatter_ring_allgather": lambda **kw: bcast.BcastScatterRingAllgather(),
}

_ALLREDUCE: dict[str, Callable[..., CollectiveAlgorithm]] = {
    "linear": lambda **kw: allreduce.AllreduceLinear(),
    "nonoverlapping": lambda **kw: allreduce.AllreduceNonOverlapping(),
    "recursive_doubling": lambda **kw: allreduce.AllreduceRecursiveDoubling(),
    "ring": lambda **kw: allreduce.AllreduceRing(),
    "segmented_ring": lambda **kw: allreduce.AllreduceSegmentedRing(kw["segsize"]),
    "rabenseifner": lambda **kw: allreduce.AllreduceRabenseifner(),
    "allgather_reduce": lambda **kw: allreduce.AllreduceAllgatherReduce(),
    "knomial_reduce_bcast": lambda **kw: allreduce.AllreduceKnomialReduceBcast(
        kw["radix"]
    ),
}

_ALLTOALL: dict[str, Callable[..., CollectiveAlgorithm]] = {
    "linear": lambda **kw: alltoall.AlltoallLinear(),
    "pairwise": lambda **kw: alltoall.AlltoallPairwise(),
    "bruck": lambda **kw: alltoall.AlltoallBruck(),
    "linear_sync": lambda **kw: alltoall.AlltoallLinearSync(),
    "ring": lambda **kw: alltoall.AlltoallRing(),
}

_REDUCE: dict[str, Callable[..., CollectiveAlgorithm]] = {
    "linear": lambda **kw: reduce.ReduceLinear(),
    "chain": lambda **kw: reduce.ReduceChain(kw["segsize"], kw["fanout"]),
    "pipeline": lambda **kw: reduce.ReducePipeline(kw["segsize"]),
    "binary": lambda **kw: reduce.ReduceBinary(kw["segsize"]),
    "binomial": lambda **kw: reduce.ReduceBinomial(kw["segsize"]),
    "in_order_binary": lambda **kw: reduce.ReduceInOrderBinary(kw["segsize"]),
    "rabenseifner": lambda **kw: reduce.ReduceRabenseifner(),
}

_ALLGATHER: dict[str, Callable[..., CollectiveAlgorithm]] = {
    "linear": lambda **kw: allgather.AllgatherLinear(),
    "bruck": lambda **kw: allgather.AllgatherBruck(),
    "recursive_doubling": lambda **kw: allgather.AllgatherRecursiveDoubling(),
    "ring": lambda **kw: allgather.AllgatherRing(),
    "neighbor_exchange": lambda **kw: allgather.AllgatherNeighborExchange(),
    "two_proc": lambda **kw: allgather.AllgatherTwoProc(),
}

_FLAT = {
    CollectiveKind.BCAST: _BCAST,
    CollectiveKind.ALLREDUCE: _ALLREDUCE,
    CollectiveKind.ALLTOALL: _ALLTOALL,
    CollectiveKind.REDUCE: _REDUCE,
    CollectiveKind.ALLGATHER: _ALLGATHER,
}

_HIER_PREFIX = "hier_"


def make_algorithm(
    collective: CollectiveKind | str, name: str, algid: int | None = None, **params
) -> CollectiveAlgorithm:
    """Build an algorithm by collective and name.

    Hierarchical variants use the ``hier_<inner-name>`` convention, e.g.
    ``make_algorithm("allreduce", "hier_ring", algid=12)``. ``algid``
    overrides the flat algorithm's default id (library numbering
    differs between Open MPI and Intel MPI).
    """
    kind = CollectiveKind(collective)
    if name.startswith(_HIER_PREFIX):
        inner = make_algorithm(kind, name[len(_HIER_PREFIX):], **params)
        if algid is None:
            raise ValueError("hierarchical algorithms need an explicit algid")
        if kind == CollectiveKind.BCAST:
            return HierarchicalBcast(algid, inner)
        if kind == CollectiveKind.ALLREDUCE:
            return HierarchicalAllreduce(algid, inner)
        raise ValueError(f"no hierarchical variant for {kind}")
    try:
        builder = _FLAT[kind][name]
    except KeyError:
        known = ", ".join(sorted(_FLAT[kind]))
        raise KeyError(f"unknown {kind} algorithm {name!r}; known: {known}") from None
    algo = builder(**params)
    if algid is not None and algid != algo.config.algid:
        algo.config = AlgorithmConfig(
            collective=algo.config.collective,
            algid=algid,
            name=algo.config.name,
            params=algo.config.params,
        )
    return algo


def algorithm_from_config(config: AlgorithmConfig) -> CollectiveAlgorithm:
    """Reconstruct the runnable algorithm for a stored configuration."""
    return make_algorithm(
        config.collective, config.name, algid=config.algid, **config.param_dict
    )


def named_algorithms(collective: CollectiveKind | str) -> list[str]:
    """All known flat algorithm names for a collective."""
    return sorted(_FLAT[CollectiveKind(collective)])
