"""Broadcast algorithms (Open MPI 4.0.2 ``coll_tuned`` numbering).

====  =======================  ==========================================
id    name                     parameters
====  =======================  ==========================================
1     linear                   —
2     chain                    segsize, chains (fanout of parallel chains)
3     pipeline                 segsize
4     split_binary             segsize
5     binary                   segsize
6     binomial                 segsize
7     knomial                  segsize, radix
8     scatter_allgather        — (binomial scatter + rec.-doubling allgather)
9     scatter_ring_allgather   — (binomial scatter + ring allgather)
====  =======================  ==========================================

``segsize=None`` means unsegmented. Algorithm 8 is the one the paper
found buggy in Open MPI 4.0.2 and excluded from dataset d1; here it is
implemented correctly, and datasets exclude it by id to mirror the
paper (see :mod:`repro.experiments.datasets`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.collectives import trees
from repro.collectives.base import (
    AlgorithmConfig,
    CollectiveAlgorithm,
    CollectiveKind,
)
from repro.collectives.patterns import (
    block_bytes,
    exchange,
    phase_tag,
    tree_bcast_program,
)
from repro.collectives.patterns import (
    allgather_doubling_rounds,
    binomial_scatter_rounds,
    ring_rounds,
)
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.simulator.engine import Recv, Send, SimResult
from repro.simulator.fastsim import (
    Round,
    linear_time,
    pipeline_tree_time,
    round_time,
    segment_sizes,
)


def _seg_payloads(sizes: np.ndarray) -> list[Any]:
    """Distinct verification payloads, one per segment."""
    return [("seg", s) for s in range(len(sizes))]


class _BcastBase(CollectiveAlgorithm):
    """Shared verification: every rank must end up with every segment."""

    def __init__(self, config: AlgorithmConfig, root: int = 0) -> None:
        super().__init__(config)
        self.root = root

    def expected_output(self, topo: Topology, nbytes: int) -> Any:
        seg = self.config.param_dict.get("segsize")
        return _seg_payloads(segment_sizes(nbytes, seg))

    def verify_result(self, topo: Topology, nbytes: int, result: SimResult) -> None:
        expected = self.expected_output(topo, nbytes)
        for rank, output in enumerate(result.outputs):
            assert output == expected, (
                f"{self.config.label}: rank {rank} got {output!r}, "
                f"expected {expected!r}"
            )


class BcastLinear(_BcastBase):
    """Algorithm 1: the root sends the full message to every rank in turn."""

    def __init__(self, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(CollectiveKind.BCAST, 1, "linear"), root
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        peers = [r for r in range(topo.size) if r != self.root]
        return linear_time(machine, topo, self.root, peers, nbytes)

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        root = self.root
        payload = ("seg", 0)

        def factory(rank: int):
            def prog():
                if rank == root:
                    for dst in range(topo.size):
                        if dst != root:
                            yield Send(dst, nbytes, payload)
                    return [payload]
                data = yield Recv(root)
                return [data]

            return prog()

        return [factory] * topo.size

    def expected_output(self, topo: Topology, nbytes: int) -> Any:
        return [("seg", 0)]


class _SegmentedTreeBcast(_BcastBase):
    """Segmented pipelined broadcast down a rank tree."""

    def __init__(
        self,
        config: AlgorithmConfig,
        tree_builder: Callable[[int, int], trees.Tree],
        root: int = 0,
    ) -> None:
        super().__init__(config, root)
        self._tree_builder = tree_builder

    def _tree(self, topo: Topology) -> trees.Tree:
        return self._tree_builder(topo.size, self.root)

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        parent, children = self._tree(topo)
        seg = self.config.param_dict.get("segsize")
        return pipeline_tree_time(machine, topo, parent, children, nbytes, seg)

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        parent, children = self._tree(topo)
        seg = self.config.param_dict.get("segsize")
        sizes = segment_sizes(nbytes, seg)
        payloads = _seg_payloads(sizes)

        def factory(rank: int):
            return tree_bcast_program(rank, parent, children, sizes, payloads)

        return [factory] * topo.size


def _chain_builder(chains: int) -> Callable[[int, int], trees.Tree]:
    return lambda p, root: trees.chain_tree(p, chains, root)


class BcastChain(_SegmentedTreeBcast):
    """Algorithm 2: ``chains`` parallel pipelined chains (Figure 2's alg.)."""

    def __init__(self, segsize: int | None, chains: int, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.BCAST, 2, "chain", segsize=segsize, chains=chains
            ),
            _chain_builder(chains),
            root,
        )


class BcastPipeline(_SegmentedTreeBcast):
    """Algorithm 3: one pipelined chain through all ranks."""

    def __init__(self, segsize: int | None, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.BCAST, 3, "pipeline", segsize=segsize
            ),
            lambda p, r: trees.pipeline_tree(p, r),
            root,
        )


class BcastBinary(_SegmentedTreeBcast):
    """Algorithm 5: segmented broadcast down a complete binary tree."""

    def __init__(self, segsize: int | None, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(CollectiveKind.BCAST, 5, "binary", segsize=segsize),
            lambda p, r: trees.binary_tree(p, r),
            root,
        )


class BcastBinomial(_SegmentedTreeBcast):
    """Algorithm 6: segmented broadcast down a binomial tree."""

    def __init__(self, segsize: int | None, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.BCAST, 6, "binomial", segsize=segsize
            ),
            lambda p, r: trees.binomial_tree(p, r),
            root,
        )


class BcastKnomial(_SegmentedTreeBcast):
    """Algorithm 7: segmented broadcast down a k-nomial tree."""

    def __init__(self, segsize: int | None, radix: int, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.BCAST, 7, "knomial", segsize=segsize, radix=radix
            ),
            lambda p, r: trees.knomial_tree(p, radix, r),
            root,
        )


class BcastSplitBinary(_BcastBase):
    """Algorithm 4: split-binary broadcast.

    The message is split in two halves; each half is pipelined down one
    subtree of a binary tree, and afterwards ranks of opposite subtrees
    pair up (BFS order) and exchange halves. Ranks without a pair (the
    subtree sizes can differ by one and the root has no pair) get the
    missing half directly from the root.
    """

    def __init__(self, segsize: int | None, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.BCAST, 4, "split_binary", segsize=segsize
            ),
            root,
        )

    def supported(self, topo: Topology, nbytes: int) -> bool:
        return topo.size >= 3

    # -- structure -------------------------------------------------------
    def _halves(self, topo: Topology) -> tuple[list[int], list[int]]:
        """BFS orders of the two subtrees hanging off the root."""
        parent, children = trees.binary_tree(topo.size, self.root)
        kids = children[self.root]
        sides: list[list[int]] = []
        for head in kids[:2]:
            order = [head]
            i = 0
            while i < len(order):
                order.extend(children[order[i]])
                i += 1
            sides.append(order)
        while len(sides) < 2:
            sides.append([])
        return sides[0], sides[1]

    def _side_tree(
        self, topo: Topology, side: list[int]
    ) -> tuple[np.ndarray, list[list[int]]]:
        """Tree over (root + side ranks); others marked absent (-2)."""
        parent_full, children_full = trees.binary_tree(topo.size, self.root)
        member = set(side) | {self.root}
        parent = np.full(topo.size, -2, dtype=np.int64)
        children: list[list[int]] = [[] for _ in range(topo.size)]
        parent[self.root] = -1
        for r in side:
            parent[r] = parent_full[r]
        for r in member:
            children[r] = [c for c in children_full[r] if c in member]
        return parent, children

    @staticmethod
    def _split_bytes(nbytes: int) -> tuple[int, int]:
        return nbytes // 2, nbytes - nbytes // 2

    # -- fast tier --------------------------------------------------------
    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        left, right = self._halves(topo)
        seg = self.config.param_dict.get("segsize")
        bytes_a, bytes_b = self._split_bytes(nbytes)
        t_tree = 0.0
        for side, part in ((left, bytes_a), (right, bytes_b)):
            if not side:
                continue
            parent, children = self._side_tree(topo, side)
            t_tree = max(
                t_tree,
                pipeline_tree_time(
                    machine, topo, parent, children, part, seg,
                    require_spanning=False,
                ),
            )
        npairs = min(len(left), len(right))
        t_xchg = 0.0
        if npairs:
            srcs = left[:npairs] + right[:npairs]
            dsts = right[:npairs] + left[:npairs]
            sizes = [bytes_b] * npairs + [bytes_a] * npairs
            t_xchg = round_time(
                machine, topo, [Round.make(srcs, dsts, np.asarray(sizes))]
            )
        leftovers = left[npairs:] + right[npairs:]
        t_left = 0.0
        if leftovers:
            t_left = linear_time(
                machine, topo, self.root, leftovers, max(bytes_a, bytes_b)
            )
        return t_tree + t_xchg + t_left

    # -- exact tier --------------------------------------------------------
    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        left, right = self._halves(topo)
        seg = self.config.param_dict.get("segsize")
        bytes_a, bytes_b = self._split_bytes(nbytes)
        sizes_a = segment_sizes(bytes_a, seg)
        sizes_b = segment_sizes(bytes_b, seg)
        payload_a = [("A", s) for s in range(len(sizes_a))]
        payload_b = [("B", s) for s in range(len(sizes_b))]
        tree_a = self._side_tree(topo, left)
        tree_b = self._side_tree(topo, right)
        npairs = min(len(left), len(right))
        pair: dict[int, tuple[int, int]] = {}
        for i in range(npairs):
            pair[left[i]] = (right[i], bytes_b)
            pair[right[i]] = (left[i], bytes_a)
        leftovers = left[npairs:] + right[npairs:]
        missing = {
            r: (payload_b, bytes_b) if r in set(left) else (payload_a, bytes_a)
            for r in leftovers
        }
        root = self.root
        side_of = {r: "A" for r in left}
        side_of.update({r: "B" for r in right})

        def factory(rank: int):
            def prog():
                if rank == root:
                    # Interleave both subtree pipelines fairly: send
                    # segment s of A then segment s of B.
                    kidsa = tree_a[1][root]
                    kidsb = tree_b[1][root]
                    for s in range(max(len(sizes_a), len(sizes_b))):
                        if s < len(sizes_a):
                            for c in kidsa:
                                yield Send(
                                    c, int(sizes_a[s]), payload_a[s],
                                    tag=phase_tag(0, s),
                                )
                        if s < len(sizes_b):
                            for c in kidsb:
                                yield Send(
                                    c, int(sizes_b[s]), payload_b[s],
                                    tag=phase_tag(1, s),
                                )
                    for r in leftovers:
                        payload, size = missing[r]
                        yield Send(r, size, tuple(payload), tag=phase_tag(2, r))
                    return payload_a + payload_b

                side = side_of[rank]
                phase = 0 if side == "A" else 1
                parent, children = tree_a if side == "A" else tree_b
                sizes = sizes_a if side == "A" else sizes_b
                mine = []
                for s, size in enumerate(sizes):
                    data = yield Recv(int(parent[rank]), tag=phase_tag(phase, s))
                    mine.append(data)
                    for c in children[rank]:
                        yield Send(c, int(size), data, tag=phase_tag(phase, s))
                if rank in pair:
                    peer, send_bytes_other = pair[rank]
                    other = yield from exchange(
                        peer, peer,
                        nbytes_send=bytes_a if side == "A" else bytes_b,
                        payload=tuple(mine),
                        tag=phase_tag(3, min(rank, peer)),
                    )
                    other = list(other)
                else:
                    other = list((yield Recv(root, tag=phase_tag(2, rank))))
                got_a = mine if side == "A" else other
                got_b = other if side == "A" else mine
                return list(got_a) + list(got_b)

            return prog()

        return [factory] * topo.size

    def expected_output(self, topo: Topology, nbytes: int) -> Any:
        seg = self.config.param_dict.get("segsize")
        bytes_a, bytes_b = self._split_bytes(nbytes)
        return [("A", s) for s in range(len(segment_sizes(bytes_a, seg)))] + [
            ("B", s) for s in range(len(segment_sizes(bytes_b, seg)))
        ]


class _ScatterAllgatherBase(_BcastBase):
    """Common scatter phase for algorithms 8 and 9."""

    def _scatter_programs_part(self, topo: Topology, nbytes: int, rank: int):
        """Generator fragment: binomial scatter; returns my block dict."""
        p = topo.size
        root = self.root
        parent, children = trees.binomial_tree(p, root)
        block = block_bytes(nbytes, p)

        def vrank(r: int) -> int:
            return (r - root) % p

        def span(r: int) -> int:
            return trees.binomial_subtree_span(p, vrank(r))

        def prog():
            if rank == root:
                blocks = {b: ("blk", b) for b in range(p)}
            else:
                blocks = yield Recv(int(parent[rank]), tag=phase_tag(0))
                blocks = dict(blocks)
            for child in children[rank]:
                # Blocks are keyed by *virtual* rank throughout.
                child_blocks = {
                    b: blocks.pop(b)
                    for b in range(vrank(child), vrank(child) + span(child))
                }
                yield Send(
                    child,
                    len(child_blocks) * block,
                    child_blocks,
                    tag=phase_tag(0),
                )
            return blocks

        return prog()

    def verify_result(self, topo: Topology, nbytes: int, result: SimResult) -> None:
        expected = {b: ("blk", b) for b in range(topo.size)}
        for rank, output in enumerate(result.outputs):
            assert output == expected, (
                f"{self.config.label}: rank {rank} holds blocks "
                f"{sorted(output)} instead of all {topo.size}"
            )

    def expected_output(self, topo: Topology, nbytes: int) -> Any:
        return {b: ("blk", b) for b in range(topo.size)}


class BcastScatterAllgather(_ScatterAllgatherBase):
    """Algorithm 8: binomial scatter + recursive-doubling allgather.

    (The variant the paper found buggy in Open MPI 4.0.2 — implemented
    correctly here; datasets exclude id 8 to mirror the paper.)
    """

    def __init__(self, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(CollectiveKind.BCAST, 8, "scatter_allgather"),
            root,
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        rounds = binomial_scatter_rounds(topo, self.root, nbytes)
        rounds += allgather_doubling_rounds(topo, nbytes)
        return round_time(machine, topo, rounds)

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        p = topo.size
        root = self.root
        block = block_bytes(nbytes, p)
        pof2 = 1 << (p.bit_length() - 1)
        rem = p - pof2

        def factory(rank: int):
            def prog():
                blocks = yield from self._scatter_programs_part(topo, nbytes, rank)
                vr = (rank - root) % p

                def real(v: int) -> int:
                    return (v + root) % p

                # Fold the tail ranks into the power-of-two core.
                if vr >= pof2:
                    partner = real(vr - pof2)
                    yield Send(partner, len(blocks) * block, blocks, tag=phase_tag(1))
                    full = yield Recv(partner, tag=phase_tag(2))
                    return dict(full)
                if vr < rem:
                    extra = yield Recv(real(vr + pof2), tag=phase_tag(1))
                    blocks.update(extra)
                dist = 1
                while dist < pof2:
                    peer = real(vr ^ dist)
                    got = yield from exchange(
                        peer, peer,
                        nbytes_send=len(blocks) * block,
                        payload=dict(blocks),
                        tag=phase_tag(3, dist),
                    )
                    blocks.update(got)
                    dist <<= 1
                if vr < rem:
                    yield Send(
                        real(vr + pof2), len(blocks) * block, dict(blocks),
                        tag=phase_tag(2),
                    )
                return blocks

            return prog()

        return [factory] * topo.size


class BcastScatterRingAllgather(_ScatterAllgatherBase):
    """Algorithm 9: binomial scatter + ring allgather (bandwidth-optimal)."""

    def __init__(self, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.BCAST, 9, "scatter_ring_allgather"
            ),
            root,
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        rounds = binomial_scatter_rounds(topo, self.root, nbytes)
        rounds += ring_rounds(
            topo, block_bytes(nbytes, topo.size), topo.size - 1
        )
        return round_time(machine, topo, rounds)

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        p = topo.size
        root = self.root
        block = block_bytes(nbytes, p)

        def factory(rank: int):
            def prog():
                blocks = yield from self._scatter_programs_part(topo, nbytes, rank)
                # Each rank owns exactly the block of its virtual rank now.
                send_block = (rank - root) % p
                nxt = (rank + 1) % p
                prev = (rank - 1) % p
                for step in range(p - 1):
                    payload = {send_block: blocks[send_block]}
                    got = yield from exchange(
                        nxt, prev, nbytes_send=block, payload=payload,
                        tag=phase_tag(4, step),
                    )
                    (recv_block, value), = got.items()
                    blocks[recv_block] = value
                    send_block = recv_block
                return blocks

            return prog()

        return [factory] * topo.size
