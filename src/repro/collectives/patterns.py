"""Reusable communication patterns.

Two kinds of building blocks live here:

* **engine programs** — generator templates executed by the exact
  engine; they move verification payloads (sets of contributing ranks,
  block dictionaries) so tests can check collective semantics,
* **round builders** — functions producing :class:`Round` sequences for
  the fast tier (recursive doubling / halving, ring, Bruck, pairwise,
  binomial scatter), mirroring the engine programs' structure.

Tag conventions: composite algorithms offset tags per phase with
:func:`phase_tag` so messages of different phases never cross-match.
"""

from __future__ import annotations

from collections.abc import Generator, Sequence
from typing import Any

import numpy as np

from repro.machine.topology import Topology
from repro.simulator.engine import Irecv, Recv, Reduce, Send, Wait
from repro.simulator.fastsim import Round, segment_sizes

_PHASE_STRIDE = 1 << 20


def phase_tag(phase: int, tag: int = 0) -> int:
    """Namespaced tag for multi-phase algorithms."""
    return phase * _PHASE_STRIDE + tag


# ----------------------------------------------------------------------
# Engine program templates
# ----------------------------------------------------------------------
def tree_bcast_program(
    rank: int,
    parent: np.ndarray,
    children: Sequence[Sequence[int]],
    sizes: np.ndarray,
    payloads: Sequence[Any],
    phase: int = 0,
) -> Generator:
    """Segmented tree broadcast; returns the list of received segments.

    The root's segment payloads are given in ``payloads``; every other
    rank receives each segment from its parent, then forwards it to its
    children in order (matching the fast tier's batching).
    """
    received: list[Any] = []
    is_root = parent[rank] < 0
    for s, size in enumerate(sizes):
        if is_root:
            payload = payloads[s]
        else:
            payload = yield Recv(int(parent[rank]), tag=phase_tag(phase, s))
        received.append(payload)
        for child in children[rank]:
            yield Send(int(child), int(size), payload, tag=phase_tag(phase, s))
    return received


def tree_reduce_program(
    rank: int,
    parent: np.ndarray,
    children: Sequence[Sequence[int]],
    sizes: np.ndarray,
    leaf_values: Sequence[Any],
    merge,
    phase: int = 0,
) -> Generator:
    """Segmented tree reduction; the root returns the combined segments.

    ``leaf_values[s]`` is this rank's contribution for segment ``s``;
    ``merge(a, b)`` folds two contributions (must be associative and
    commutative, like MPI reduction ops).
    """
    acc: list[Any] = list(leaf_values)
    for s, size in enumerate(sizes):
        for child in children[rank]:
            value = yield Recv(int(child), tag=phase_tag(phase, s))
            yield Reduce(int(size))
            acc[s] = merge(acc[s], value)
        if parent[rank] >= 0:
            yield Send(int(parent[rank]), int(size), acc[s], tag=phase_tag(phase, s))
    return acc


def exchange(
    send_to: int,
    recv_from: int,
    nbytes_send: int,
    payload: Any,
    *,
    tag: int = 0,
    recv_tag: int | None = None,
) -> Generator:
    """Full-duplex sendrecv: post the receive, send, then wait.

    Returns the received payload. ``yield from`` this from algorithm
    programs.
    """
    handle = yield Irecv(recv_from, tag=tag if recv_tag is None else recv_tag)
    yield Send(send_to, nbytes_send, payload, tag=tag)
    data = yield Wait(handle)
    return data


# ----------------------------------------------------------------------
# Block bookkeeping for scatter/allgather style algorithms
# ----------------------------------------------------------------------
def block_bytes(nbytes: int, nblocks: int) -> int:
    """Size of one block when a buffer is cut into ``nblocks`` pieces.

    We charge the rounded-up uniform block size — the real algorithms
    pad or carry a remainder block; the difference is at most one byte
    per block and irrelevant for model fidelity.
    """
    if nblocks < 1:
        raise ValueError(f"nblocks must be >= 1, got {nblocks}")
    return -(-nbytes // nblocks)  # ceil division


# ----------------------------------------------------------------------
# Round builders (fast tier)
# ----------------------------------------------------------------------
def recursive_doubling_rounds(
    topo: Topology, nbytes: int, *, compute: bool = False
) -> list[Round]:
    """Recursive-doubling exchange pattern for allreduce/allgather cores.

    With ``p`` not a power of two, the standard pre/post folding steps
    are included: the first ``2*rem`` ranks pair up, odd members retire
    for the core rounds and are refilled at the end.
    """
    p = topo.size
    if p == 1:
        return []
    pof2 = 1 << (p.bit_length() - 1)
    rem = p - pof2
    rounds: list[Round] = []
    comp = nbytes if compute else 0
    if rem:
        extras = np.arange(rem) * 2 + 1  # odd ranks of the first 2*rem
        partners = extras - 1
        rounds.append(Round.make(extras, partners, nbytes, comp))
    # Core: the surviving pof2 ranks exchange at doubling distances.
    core = _core_ranks(p, rem)
    vrank = np.arange(pof2)
    dist = 1
    while dist < pof2:
        peers = core[vrank ^ dist]
        rounds.append(Round.make(core, peers, nbytes, comp))
        dist <<= 1
    if rem:
        extras = np.arange(rem) * 2 + 1
        rounds.append(Round.make(extras - 1, extras, nbytes, 0))
    return rounds


def _core_ranks(p: int, rem: int) -> np.ndarray:
    """Real ranks participating in the power-of-two core rounds."""
    ranks = np.arange(p)
    if rem == 0:
        return ranks
    # Of the first 2*rem ranks only the even ones survive; the rest all do.
    survivors = np.concatenate([ranks[: 2 * rem : 2], ranks[2 * rem :]])
    return survivors


def reduce_scatter_halving_rounds(topo: Topology, nbytes: int) -> list[Round]:
    """Recursive-halving reduce-scatter (first half of Rabenseifner)."""
    p = topo.size
    if p == 1:
        return []
    pof2 = 1 << (p.bit_length() - 1)
    rem = p - pof2
    rounds: list[Round] = []
    if rem:
        extras = np.arange(rem) * 2 + 1
        # Extras ship half their vector each way in the classic variant;
        # we charge the dominant full-vector fold.
        rounds.append(Round.make(extras, extras - 1, nbytes, nbytes))
    core = _core_ranks(p, rem)
    vrank = np.arange(pof2)
    dist = pof2 // 2
    size = nbytes
    while dist >= 1:
        size = block_bytes(size, 2)
        peers = core[vrank ^ dist]
        rounds.append(Round.make(core, peers, size, size))
        dist //= 2
    return rounds


def allgather_doubling_rounds(topo: Topology, nbytes: int) -> list[Round]:
    """Recursive-doubling allgather over per-rank blocks of ``nbytes/p``."""
    p = topo.size
    if p == 1:
        return []
    pof2 = 1 << (p.bit_length() - 1)
    rem = p - pof2
    block = block_bytes(nbytes, p)
    rounds: list[Round] = []
    if rem:
        extras = np.arange(rem) * 2 + 1
        rounds.append(Round.make(extras, extras - 1, block, 0))
    core = _core_ranks(p, rem)
    vrank = np.arange(pof2)
    dist = 1
    size = block
    while dist < pof2:
        peers = core[vrank ^ dist]
        rounds.append(Round.make(core, peers, size, 0))
        size *= 2
        dist <<= 1
    if rem:
        extras = np.arange(rem) * 2 + 1
        rounds.append(Round.make(extras - 1, extras, nbytes, 0))
    return rounds


def ring_rounds(
    topo: Topology,
    block: int,
    num_rounds: int,
    *,
    compute: bool = False,
) -> list[Round]:
    """``num_rounds`` shifts of ``block`` bytes around the rank ring."""
    p = topo.size
    if p == 1 or num_rounds == 0:
        return []
    ranks = np.arange(p)
    nxt = (ranks + 1) % p
    comp = block if compute else 0
    one = Round.make(ranks, nxt, block, comp)
    return [one] * num_rounds


def pairwise_rounds(topo: Topology, block: int) -> list[Round]:
    """Pairwise-exchange alltoall: round k pairs rank with rank+k / rank-k."""
    p = topo.size
    rounds: list[Round] = []
    ranks = np.arange(p)
    for k in range(1, p):
        rounds.append(Round.make(ranks, (ranks + k) % p, block))
    return rounds


def bruck_alltoall_rounds(topo: Topology, block: int) -> list[Round]:
    """Bruck's alltoall: ceil(log2 p) rounds of ~half the buffer each."""
    p = topo.size
    rounds: list[Round] = []
    ranks = np.arange(p)
    k = 1
    while k < p:
        # Blocks whose index has bit k set travel distance k.
        nblocks = sum(1 for b in range(p) if b & k)
        rounds.append(Round.make(ranks, (ranks + k) % p, nblocks * block))
        k <<= 1
    return rounds


def binomial_scatter_rounds(
    topo: Topology, root: int, nbytes: int
) -> list[Round]:
    """Binomial scatter of ``nbytes/p`` blocks from ``root``.

    Round ``k`` (from the top): every rank holding data sends the upper
    half of its block range to the rank at distance ``2^k``.
    """
    p = topo.size
    if p == 1:
        return []
    block = block_bytes(nbytes, p)
    rounds: list[Round] = []
    dist = 1 << ((p - 1).bit_length() - 1)
    while dist >= 1:
        srcs, dsts, sizes = [], [], []
        for vr in range(0, p, 2 * dist):
            peer = vr + dist
            if peer < p:
                count = min(dist, p - peer)
                srcs.append((vr + root) % p)
                dsts.append((peer + root) % p)
                sizes.append(count * block)
        if srcs:
            rounds.append(Round.make(srcs, dsts, np.asarray(sizes)))
        dist //= 2
    return rounds


__all__ = [
    "phase_tag",
    "tree_bcast_program",
    "tree_reduce_program",
    "exchange",
    "block_bytes",
    "segment_sizes",
    "recursive_doubling_rounds",
    "reduce_scatter_halving_rounds",
    "allgather_doubling_rounds",
    "ring_rounds",
    "pairwise_rounds",
    "bruck_alltoall_rounds",
    "binomial_scatter_rounds",
]
