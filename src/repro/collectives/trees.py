"""Tree shapes used by tree-based collective algorithms.

All builders are *topology-unaware*, exactly like Open MPI's
``coll_tuned`` trees: they are built on virtual ranks
``vr = (rank - root) mod p`` from rank numbering alone, which is why
process placement (ppn) affects their performance so strongly — a fact
the selection models must learn.

A tree is represented as ``(parent, children)`` where ``parent`` is an
``int64`` array (-1 at the root) and ``children[r]`` is the ordered list
of rank ``r``'s children. Children are ordered largest-subtree-first
(Open MPI's send order), which matters for pipelining.
"""

from __future__ import annotations

import numpy as np

Tree = tuple[np.ndarray, list[list[int]]]


def _finalize(p: int, root: int, vparent: list[int], vchildren: list[list[int]]) -> Tree:
    """Map a virtual-rank tree back to real ranks."""
    to_real = lambda vr: (vr + root) % p  # noqa: E731 - tiny local helper
    parent = np.full(p, -1, dtype=np.int64)
    children: list[list[int]] = [[] for _ in range(p)]
    for vr in range(p):
        r = to_real(vr)
        if vparent[vr] >= 0:
            parent[r] = to_real(vparent[vr])
        children[r] = [to_real(c) for c in vchildren[vr]]
    return parent, children


def _check(p: int, root: int) -> None:
    if p < 1:
        raise ValueError(f"communicator size must be >= 1, got {p}")
    if not 0 <= root < p:
        raise ValueError(f"root {root} out of range 0..{p - 1}")


def binomial_tree(p: int, root: int = 0) -> Tree:
    """Binomial tree: depth ``ceil(log2 p)``, children largest-first.

    Oriented so that every subtree covers a *contiguous* virtual-rank
    range (parent clears the lowest set bit), which is what binomial
    scatter/gather phases rely on: the subtree of virtual rank ``v``
    is ``[v, v + lowbit(v))`` clipped to ``p``.
    """
    _check(p, root)
    vparent = [-1] * p
    vchildren: list[list[int]] = [[] for _ in range(p)]
    for vr in range(1, p):
        vparent[vr] = vr & (vr - 1)  # clear lowest set bit
        vchildren[vparent[vr]].append(vr)
    for vr in range(p):
        # Decreasing order = largest subtree first (Open MPI send order).
        vchildren[vr].sort(reverse=True)
    return _finalize(p, root, vparent, vchildren)


def binomial_subtree_span(p: int, vr: int) -> int:
    """Number of virtual ranks in ``vr``'s subtree of the binomial tree."""
    if vr == 0:
        return p
    low = vr & -vr
    return min(low, p - vr)


def knomial_tree(p: int, radix: int, root: int = 0) -> Tree:
    """k-nomial tree (radix >= 2); radix 2 coincides with the binomial tree."""
    _check(p, root)
    if radix < 2:
        raise ValueError(f"radix must be >= 2, got {radix}")
    vparent = [-1] * p
    vchildren: list[list[int]] = [[] for _ in range(p)]
    # Virtual rank digits in base `radix`: the parent zeroes the *least*
    # significant non-zero digit, so subtrees cover contiguous ranges
    # (radix 2 degenerates to the binomial tree above).
    for vr in range(1, p):
        weight = 1
        while (vr // weight) % radix == 0:
            weight *= radix
        digit = (vr // weight) % radix
        vparent[vr] = vr - digit * weight
        vchildren[vparent[vr]].append(vr)
    for vr in range(p):
        vchildren[vr].sort(reverse=True)  # largest subtree first
    return _finalize(p, root, vparent, vchildren)


def binary_tree(p: int, root: int = 0) -> Tree:
    """Complete binary tree in virtual-rank order (children 2i+1, 2i+2)."""
    _check(p, root)
    vparent = [-1] * p
    vchildren: list[list[int]] = [[] for _ in range(p)]
    for vr in range(1, p):
        vparent[vr] = (vr - 1) // 2
        vchildren[vparent[vr]].append(vr)
    return _finalize(p, root, vparent, vchildren)


def chain_tree(p: int, nchains: int, root: int = 0) -> Tree:
    """``nchains`` parallel chains hanging off the root.

    Non-root virtual ranks ``1..p-1`` are split into ``nchains``
    contiguous chains (sizes differing by at most one); the root's
    children are the chain heads.
    """
    _check(p, root)
    if nchains < 1:
        raise ValueError(f"nchains must be >= 1, got {nchains}")
    vparent = [-1] * p
    vchildren: list[list[int]] = [[] for _ in range(p)]
    rest = p - 1
    nchains = min(nchains, rest) if rest else 0
    start = 1
    for c in range(nchains):
        length = rest // nchains + (1 if c < rest % nchains else 0)
        head = start
        vparent[head] = 0
        vchildren[0].append(head)
        for vr in range(head + 1, head + length):
            vparent[vr] = vr - 1
            vchildren[vr - 1].append(vr)
        start += length
    return _finalize(p, root, vparent, vchildren)


def pipeline_tree(p: int, root: int = 0) -> Tree:
    """Single chain through all ranks (Open MPI's 'pipeline')."""
    return chain_tree(p, 1, root)


def tree_depth(parent: np.ndarray) -> int:
    """Longest root-to-leaf path length (edges)."""
    p = len(parent)
    depth = np.zeros(p, dtype=np.int64)
    # Parents always precede children in virtual-rank order only for
    # binomial/knomial trees, so resolve iteratively instead.
    order = np.argsort(_depths_unordered(parent))
    for r in order:
        if parent[r] >= 0:
            depth[r] = depth[parent[r]] + 1
    return int(depth.max(initial=0))


def _depths_unordered(parent: np.ndarray) -> np.ndarray:
    p = len(parent)
    depth = np.full(p, -1, dtype=np.int64)
    for r in range(p):
        # Walk up, memoising.
        path = []
        cur = r
        while depth[cur] < 0 and parent[cur] >= 0:
            path.append(cur)
            cur = int(parent[cur])
        base = depth[cur] if depth[cur] >= 0 else 0
        if parent[cur] < 0:
            depth[cur] = 0
            base = 0
        for offset, node in enumerate(reversed(path), start=1):
            depth[node] = base + offset
    return depth
