"""Drivers regenerating the paper's figures (as data series).

Every driver returns a :class:`FigureData` whose rows are exactly the
points the corresponding paper figure plots; ``render()`` gives an
ASCII view and the benchmark suite prints it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluation import evaluate_selector
from repro.core.selector import AlgorithmSelector
from repro.experiments.cache import dataset_cached
from repro.experiments.datasets import DATASETS, Scale
from repro.experiments.report import render_table
from repro.experiments.splits import SPLITS, split_dataset
from repro.machine.zoo import get_machine
from repro.ml import PAPER_LEARNERS
from repro.mpilib import get_library


@dataclass
class FigureData:
    """One regenerated exhibit: header row + data points."""

    exhibit: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    note: str = ""

    def render(self, floatfmt: str = ".3g") -> str:
        text = render_table(self.columns, self.rows, floatfmt, title=self.exhibit)
        if self.note:
            text += f"\n({self.note})"
        return text

    def column(self, name: str) -> np.ndarray:
        idx = self.columns.index(name)
        return np.asarray([row[idx] for row in self.rows])


# ----------------------------------------------------------------------
# Figure 2 — chain-broadcast speed-up over linear, 32x32 on Hydra
# ----------------------------------------------------------------------
def figure2(scale: Scale | str = Scale.CI, seed: int = 0) -> FigureData:
    """Speed-up of every chain configuration w.r.t. linear broadcast.

    Paper: Open MPI bcast alg. 2 (chain) vs alg. 1 (linear) at 32x32 on
    Hydra; speed-ups reach 10-50x at 4 MiB depending on the segment
    size / chain count. CI scale uses the largest grid point available.
    """
    scale = Scale(scale)
    dataset = dataset_cached("d1", scale, seed)
    nodes = int(dataset.nodes.max())
    ppn = int(dataset.ppn.max())
    table = dataset.instance_table()
    linear_id = next(
        i for i, c in enumerate(dataset.configs) if c.name == "linear"
    )
    fig = FigureData(
        exhibit="Figure 2: chain bcast speed-up vs linear "
        f"({nodes}x{ppn}, Open MPI, Hydra)",
        columns=("segsize", "chains", "msize", "speedup"),
    )
    for msize in np.unique(dataset.msize):
        measured = table[(nodes, ppn, int(msize))]
        t_linear = measured[linear_id]
        for cid, cfg in enumerate(dataset.configs):
            if cfg.name != "chain" or cid not in measured:
                continue
            params = cfg.param_dict
            fig.rows.append(
                (
                    params["segsize"],
                    params["chains"],
                    int(msize),
                    t_linear / measured[cid],
                )
            )
    fig.note = "speedup > 1 means the chain configuration beats linear"
    return fig


# ----------------------------------------------------------------------
# Figures 4 / 6 / 7 / 8 — strategy comparison (best / default / predicted)
# ----------------------------------------------------------------------
_STRATEGY_FIGS: dict[str, tuple[str, str, tuple[int, ...]]] = {
    # figure name -> (dataset id, learner, paper-scale ppn panel)
    "Figure 4": ("d1", "GAM", (1, 16, 32)),
    "Figure 6": ("d5", "GAM", (1, 16, 32)),
    "Figure 7": ("d4", "GAM", (1, 8, 16)),
    "Figure 8": ("d8", "GAM", (1, 24, 48)),
}


def strategy_comparison(
    did: str,
    learner: str = "GAM",
    scale: Scale | str = Scale.CI,
    seed: int = 0,
    ppns: tuple[int, ...] | None = None,
    exhibit: str = "",
) -> FigureData:
    """Normalised runtime of best / default / predicted per instance.

    This is the common engine behind Figures 4, 6, 7 and 8: train on
    the Table III full split, evaluate on the held-out odd node counts,
    and report each test instance's runtimes normalised by the
    exhaustive-search best (so best == 1.0 everywhere).
    """
    scale = Scale(scale)
    spec = DATASETS[did]
    dataset = dataset_cached(did, scale, seed)
    train, test = split_dataset(dataset, scale)
    selector = AlgorithmSelector(PAPER_LEARNERS[learner]).fit(train)
    result = evaluate_selector(
        selector, test, get_library(spec.library), get_machine(spec.machine)
    )
    if ppns is not None:
        keep = np.isin(result.ppn, np.asarray(ppns))
    else:
        keep = np.ones(len(result), dtype=bool)
    fig = FigureData(
        exhibit=exhibit
        or f"Strategy comparison on {did} ({spec.library}, {spec.machine}, {learner})",
        columns=(
            "nodes", "ppn", "msize",
            "norm_best", "norm_default", "norm_predicted",
            "default_id", "predicted_id",
        ),
    )
    norm_def = result.normalized_default
    norm_pred = result.normalized_predicted
    for i in np.flatnonzero(keep):
        fig.rows.append(
            (
                int(result.nodes[i]), int(result.ppn[i]), int(result.msize[i]),
                1.0, float(norm_def[i]), float(norm_pred[i]),
                dataset.configs[result.default_id[i]].algid,
                dataset.configs[result.predicted_id[i]].algid,
            )
        )
    fig.note = (
        f"mean speedup vs default: {result.mean_speedup:.2f} "
        f"({len(result)} instances, {result.skipped} skipped)"
    )
    return fig


def figure4(scale: Scale | str = Scale.CI, seed: int = 0) -> FigureData:
    """MPI_Bcast, Open MPI, Hydra (paper Figure 4)."""
    return _named_strategy_fig("Figure 4", scale, seed)


def figure6(scale: Scale | str = Scale.CI, seed: int = 0) -> FigureData:
    """MPI_Allreduce, Intel MPI, Hydra (paper Figure 6) — near-tie expected."""
    return _named_strategy_fig("Figure 6", scale, seed)


def figure7(scale: Scale | str = Scale.CI, seed: int = 0) -> FigureData:
    """MPI_Allreduce, Open MPI, Jupiter (paper Figure 7)."""
    return _named_strategy_fig("Figure 7", scale, seed)


def figure8(scale: Scale | str = Scale.CI, seed: int = 0) -> FigureData:
    """MPI_Bcast, Open MPI, SuperMUC-NG (paper Figure 8)."""
    return _named_strategy_fig("Figure 8", scale, seed)


def _named_strategy_fig(
    name: str, scale: Scale | str, seed: int
) -> FigureData:
    did, learner, ppns = _STRATEGY_FIGS[name]
    scale = Scale(scale)
    spec = DATASETS[did]
    grid_ppns = set(spec.grid(scale).ppns)
    panel = tuple(p for p in ppns if p in grid_ppns) or None
    return strategy_comparison(
        did, learner, scale, seed, ppns=panel,
        exhibit=f"{name}: MPI_{str(spec.collective).capitalize()}, "
        f"{spec.library}, {spec.machine}",
    )


# ----------------------------------------------------------------------
# Figure 5 — predicted algorithm map per learner
# ----------------------------------------------------------------------
def figure5(
    scale: Scale | str = Scale.CI,
    seed: int = 0,
    learners: tuple[str, ...] = ("KNN", "GAM", "XGBoost"),
) -> FigureData:
    """Which algorithm id each learner selects per test configuration.

    Paper Figure 5: x = (nodes x ppn) configuration, y = message size,
    colour = selected algorithm id, one panel per learner. The paper's
    observation to reproduce: the learners genuinely differ and all
    algorithms appear somewhere.
    """
    scale = Scale(scale)
    dataset = dataset_cached("d1", scale, seed)
    train, test = split_dataset(dataset, scale)
    split = SPLITS[("Hydra", Scale(scale))]
    fig = FigureData(
        exhibit="Figure 5: predicted bcast algorithm per configuration "
        "(Open MPI, Hydra)",
        columns=("learner", "nodes", "ppn", "msize", "algid", "config_label"),
    )
    test_ppns = np.unique(test.ppn)
    test_msizes = np.unique(test.msize)
    for learner in learners:
        selector = AlgorithmSelector(PAPER_LEARNERS[learner]).fit(train)
        for n in split.test:
            if n not in np.unique(test.nodes):
                continue
            for ppn in test_ppns:
                ids = selector.select_ids(
                    np.full(len(test_msizes), n),
                    np.full(len(test_msizes), ppn),
                    test_msizes,
                )
                for m, cid in zip(test_msizes, ids, strict=True):
                    cfg = dataset.configs[int(cid)]
                    fig.rows.append(
                        (learner, int(n), int(ppn), int(m), cfg.algid, cfg.label)
                    )
    distinct = sorted({row[4] for row in fig.rows})
    fig.note = f"algorithm ids used across learners: {distinct}"
    return fig
