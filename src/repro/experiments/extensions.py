"""Drivers for the beyond-the-paper extension exhibits.

* **E1 — offline ML vs online (STAR-MPI) tuning**: the paper's §II
  argument quantified. The online tuner pays its exploration inside the
  application; the offline selector answers instantly from models
  trained on *other* node counts.
* **E2 — performance guidelines**: the PGMPITuneLib view (§VI): the
  default decision logic violates self-consistency guidelines that the
  tuned portfolio (mostly) repairs.
* **E3 — extension collectives**: the selection framework applied
  unchanged to MPI_Reduce and MPI_Allgather (datasets dx1/dx2),
  supporting the paper's claim that the approach is generic.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import evaluate_selector
from repro.core.online import OnlineSelector
from repro.core.retrain import shifted_times
from repro.core.selector import AlgorithmSelector
from repro.experiments.cache import dataset_cached
from repro.experiments.datasets import EXTENSION_DATASETS, Scale
from repro.experiments.guidelines import guidelines_table
from repro.experiments.splits import split_dataset
from repro.experiments.tables import TableData
from repro.machine.topology import Topology
from repro.machine.zoo import get_machine
from repro.ml import PAPER_LEARNERS
from repro.mpilib import get_library
from repro.utils.units import KiB, MiB


def online_vs_offline(
    scale: Scale | str = Scale.CI, seed: int = 0, num_calls: int = 200
) -> TableData:
    """E1: per-call cost of online tuning vs the offline ML selection.

    Scenario: an application calls MPI_Bcast ``num_calls`` times on an
    allocation whose node count was never benchmarked. The offline
    selector picks once (trained on the d1 split); the online tuner
    explores in-application. Reported per strategy: mean per-call time
    normalised by the oracle, and the time wasted relative to it.
    """
    scale = Scale(scale)
    dataset = dataset_cached("d1", scale, seed)
    train, test = split_dataset(dataset, scale)
    machine = get_machine("Hydra")
    library = get_library("Open MPI")
    selector = AlgorithmSelector(PAPER_LEARNERS["GAM"]).fit(train)

    table = TableData(
        exhibit="E1: offline ML selection vs online (STAR-MPI) tuning "
        f"({num_calls} MPI_Bcast calls per instance)",
        columns=(
            "strategy", "mean_norm_per_call", "wasted_vs_oracle_pct",
        ),
    )
    instances = [
        (int(n), int(ppn), int(m))
        for n, ppn, m in test.instances()[:: max(1, len(test.instances()) // 12)]
    ]
    table_lookup = test.instance_table()

    margin = 0.10
    offline_norm, online_norm, closed_norm = [], [], []
    offline_waste, online_waste, closed_waste = [], [], []
    explored_calls = 0
    for n, ppn, m in instances:
        measured = table_lookup[(n, ppn, m)]
        oracle = min(measured.values())
        # Offline: one model query, then every call runs the pick.
        pred_id = None
        for cid in np.argsort(selector.predict_times(n, ppn, m)[0]):
            if int(cid) in measured:
                pred_id = int(cid)
                break
        t_off = measured[pred_id]
        offline_norm.append(t_off / oracle)
        offline_waste.append((t_off - oracle) * num_calls)
        # Online: exploration happens inside the application calls.
        tuner = OnlineSelector(
            machine, library, "bcast", policy="star",
            exclude_algids=(8,), rng=seed,
        )
        result = tuner.run(Topology(n, ppn), m, num_calls)
        online_norm.append(result.total_time / (oracle * num_calls))
        online_waste.append(result.regret)
        # Closed loop: serve the offline pick, but re-measure the
        # candidate column (one call per config) only where the
        # analytical prior disagrees with the learned pick — the same
        # active-sampling rule the background retrainer applies
        # (repro/core/retrain.py). Everywhere the families agree the
        # offline pick runs untouched, so the exploration budget stays
        # a fraction of what full online tuning spends.
        analytical = shifted_times(machine, library, "bcast", (n, ppn, m))
        candidates = sorted(measured)
        prior = {cid: float(analytical[cid]) for cid in candidates}
        finite = [t for t in prior.values() if np.isfinite(t)]
        disagree = (
            not finite
            or not np.isfinite(prior[pred_id])
            or prior[pred_id] > min(finite) * (1.0 + margin)
        )
        if disagree and num_calls > len(candidates):
            explored_calls += len(candidates)
            t_closed = (
                sum(measured.values())
                + (num_calls - len(candidates)) * oracle
            )
        else:
            t_closed = t_off * num_calls
        closed_norm.append(t_closed / (oracle * num_calls))
        closed_waste.append(t_closed - oracle * num_calls)
    total_waste = max(
        float(
            np.sum(online_waste) + np.sum(offline_waste)
            + np.sum(closed_waste)
        ),
        1e-30,
    )
    table.rows.append(
        (
            "offline ML (paper)",
            float(np.mean(offline_norm)),
            100.0 * float(np.sum(offline_waste)) / total_waste,
        )
    )
    table.rows.append(
        (
            "online STAR-MPI",
            float(np.mean(online_norm)),
            100.0 * float(np.sum(online_waste)) / total_waste,
        )
    )
    table.rows.append(
        (
            "closed loop (feedback retrain)",
            float(np.mean(closed_norm)),
            100.0 * float(np.sum(closed_waste)) / total_waste,
        )
    )
    budget_frac = explored_calls / float(num_calls * max(len(instances), 1))
    table.note = (
        "mean per-call runtime normalised by the per-instance oracle; "
        "waste shares sum to 100%; closed loop explored "
        f"{100.0 * budget_frac:.1f}% of its calls (active sampling "
        "where the analytical prior disagrees with the learned pick)"
    )
    return table


def guidelines_exhibit(scale: Scale | str = Scale.CI) -> TableData:
    """E2: guideline violations of the default vs the tuned portfolio."""
    machine = get_machine("Hydra")
    library = get_library("Open MPI")
    if Scale(scale) is Scale.PAPER:
        nodes, ppns = (8, 16, 32), (1, 16, 32)
    else:
        nodes, ppns = (8, 16), (1, 16)
    instances = [
        (n, ppn, m)
        for n in nodes
        for ppn in ppns
        for m in (64, 16 * KiB, MiB)
    ]
    return guidelines_table(machine, library, instances)


def mvapich_class_tuning(
    scale: Scale | str = Scale.CI, seed: int = 0
) -> TableData:
    """E4: tuning under MVAPICH's size-class constraint (§IV-B).

    Three strategies on held-out allocations of an MVAPICH-like
    allreduce campaign on Hydra: the factory class table, our models
    constrained to one choice per size class, and the unconstrained
    per-instance selection. Expected shape: class tuning recovers most
    of the per-instance gains — three well-chosen regimes cover the
    crossover structure — while the factory table loses where its
    regime boundaries sit wrong for the machine.
    """
    from repro.bench.repro_mpi import BenchmarkSpec
    from repro.bench.runner import DatasetRunner, GridSpec
    from repro.core.class_tuner import tune_size_classes
    from repro.mpilib.mvapich import MVAPICHLibrary, size_class

    scale = Scale(scale)
    machine = get_machine("Hydra")
    library = MVAPICHLibrary()
    if scale is Scale.PAPER:
        nodes = (4, 7, 8, 13, 16, 20, 24, 27, 32)
        ppns = (1, 8, 16, 32)
        test_nodes = (7, 13, 27)
    else:
        nodes = (4, 7, 8, 13, 16)
        ppns = (1, 16)
        test_nodes = (7, 13)
    msizes = (16, KiB, 4 * KiB, 16 * KiB, 128 * KiB, MiB, 4 * MiB)
    runner = DatasetRunner(
        machine, library, BenchmarkSpec(max_nreps=15), seed=seed
    )
    dataset = runner.run(
        "allreduce",
        GridSpec(nodes=nodes, ppns=ppns, msizes=msizes),
        name="mv-allreduce",
    )
    train = dataset.filter_nodes([n for n in nodes if n not in test_nodes])
    test = dataset.filter_nodes(test_nodes)
    selector = AlgorithmSelector(PAPER_LEARNERS["GAM"]).fit(train)

    table_lookup = test.instance_table()
    ds_index = {cfg: i for i, cfg in enumerate(dataset.configs)}
    norms: dict[str, list[float]] = {
        "factory class table": [],
        "class-tuned (ours)": [],
        "per-instance (ours)": [],
    }
    factory_lib = MVAPICHLibrary()  # pristine class table
    for n in test_nodes:
        for ppn in ppns:
            tuned = tune_size_classes(selector, n, ppn)
            for m in msizes:
                measured = table_lookup.get((n, ppn, m))
                if not measured:
                    continue
                best = min(measured.values())
                factory_cfg = factory_lib.default_config(
                    machine, Topology(n, ppn), "allreduce", m
                )
                norms["factory class table"].append(
                    measured[ds_index[factory_cfg]] / best
                )
                norms["class-tuned (ours)"].append(
                    measured[ds_index[tuned[size_class(m)]]] / best
                )
                pred = selector.predict_times(n, ppn, m)[0]
                order = np.argsort(pred)
                pick = next(int(c) for c in order if int(c) in measured)
                norms["per-instance (ours)"].append(measured[pick] / best)

    table = TableData(
        exhibit=f"E4: tuning under MVAPICH's size-class constraint "
        f"({scale.value} scale)",
        columns=("strategy", "mean_norm", "p90_norm"),
    )
    for name, values in norms.items():
        arr = np.asarray(values)
        table.rows.append(
            (name, float(arr.mean()), float(np.quantile(arr, 0.9)))
        )
    table.note = "runtime normalised by per-instance best (1.0 = oracle)"
    return table


def randomized_split(
    scale: Scale | str = Scale.CI,
    seed: int = 0,
    did: str = "d1",
    test_fraction: float = 0.3,
) -> TableData:
    """§V's randomisation check: random instance split vs node split.

    The paper: "we could have fully randomized these datasets … The
    results were very similar to the ones we present here." This driver
    evaluates both protocols on the same dataset: (a) Table III's
    held-out node counts, (b) a random split over *instances*
    (keeping all samples of an instance on one side).
    """
    scale = Scale(scale)
    from repro.experiments.datasets import dataset_spec
    from repro.utils.rng import as_generator

    spec = dataset_spec(did)
    dataset = dataset_cached(did, scale, seed)
    library = get_library(spec.library)
    machine = get_machine(spec.machine)

    table = TableData(
        exhibit=f"Randomised vs node-based train/test split on {did} "
        f"({scale.value} scale)",
        columns=("method", "node_split_speedup", "random_split_speedup"),
    )
    # (b) random split over instances.
    instances = dataset.instances()
    rng = as_generator(seed)
    order = rng.permutation(len(instances))
    n_test = max(1, int(round(len(instances) * test_fraction)))
    test_keys = {tuple(int(v) for v in instances[i]) for i in order[:n_test]}
    keys = list(zip(dataset.nodes, dataset.ppn, dataset.msize, strict=True))
    test_mask = np.array(
        [(int(n), int(p), int(m)) in test_keys for n, p, m in keys]
    )
    rand_train = dataset.subset(~test_mask, name=f"{did}-rand-train")
    rand_test = dataset.subset(test_mask, name=f"{did}-rand-test")
    # (a) the paper's node split.
    node_train, node_test = split_dataset(dataset, scale)

    for factory in PAPER_LEARNERS.values():
        node_sel = AlgorithmSelector(factory).fit(node_train)
        node_speedup = evaluate_selector(
            node_sel, node_test, library, machine
        ).mean_speedup
        rand_sel = AlgorithmSelector(factory).fit(rand_train)
        rand_speedup = evaluate_selector(
            rand_sel, rand_test, library, machine
        ).mean_speedup
        table.rows.append((name, node_speedup, rand_speedup))
    table.note = (
        "the paper reports both protocols give 'very similar' results"
    )
    return table


def noise_sensitivity(
    scale: Scale | str = Scale.CI,
    seed: int = 0,
    sigmas: tuple[float, ...] = (0.0, 0.03, 0.1, 0.3),
) -> TableData:
    """A4: selection quality as measurement noise grows.

    The paper's benchmark data carries real measurement dispersion; the
    models must select well *despite* it. This ablation regenerates a
    d1-style campaign under increasing multiplicative noise (sigma of
    the lognormal factor) and reports each learner's mean speed-up over
    the default — expected shape: flat until the noise rivals the gaps
    between algorithms, then graceful degradation.
    """
    from repro.bench.repro_mpi import BenchmarkSpec
    from repro.bench.runner import DatasetRunner, GridSpec
    from repro.machine.model import NoiseModel

    scale = Scale(scale)
    machine = get_machine("Hydra")
    library = get_library("Open MPI")
    if scale is Scale.PAPER:
        nodes = (4, 7, 8, 13, 16, 20, 24, 32)
        ppns = (1, 8, 16, 32)
    else:
        nodes = (4, 7, 8, 13, 16)
        ppns = (1, 16)
    msizes = (1, KiB, 16 * KiB, 128 * KiB, MiB, 4 * MiB)

    table = TableData(
        exhibit=f"A4: selection quality vs measurement noise "
        f"({scale.value} scale)",
        columns=("noise_sigma", *PAPER_LEARNERS, "oracle_gap_default"),
    )
    for sigma in sigmas:
        noisy = machine.with_noise(
            NoiseModel(sigma=sigma, spike_prob=0.01 if sigma else 0.0)
        )
        runner = DatasetRunner(
            noisy, library, BenchmarkSpec(max_nreps=15), seed=seed
        )
        dataset = runner.run(
            "bcast",
            GridSpec(nodes=nodes, ppns=ppns, msizes=msizes),
            name=f"noise-{sigma}",
            exclude_algids=(8,),
        )
        train, test = split_dataset(dataset, scale)
        row: list[float] = [sigma]
        default_norm = None
        for name, factory in PAPER_LEARNERS.items():
            selector = AlgorithmSelector(factory).fit(train)
            result = evaluate_selector(selector, test, library, noisy)
            row.append(result.mean_speedup)
            default_norm = float(np.mean(result.normalized_default))
        row.append(default_norm)
        table.rows.append(tuple(row))
    table.note = (
        "mean speed-up over default per learner; last column = default's "
        "mean normalised runtime (its badness is noise-independent)"
    )
    return table


def extension_speedups(
    scale: Scale | str = Scale.CI, seed: int = 0
) -> TableData:
    """E3: Table IV methodology applied to MPI_Reduce and MPI_Allgather."""
    scale = Scale(scale)
    dids = tuple(EXTENSION_DATASETS)
    table = TableData(
        exhibit=f"E3: speed-up over default on the extension collectives "
        f"({scale.value} scale)",
        columns=("method", *dids, "mean"),
    )
    speedups: dict[str, list[float]] = {name: [] for name in PAPER_LEARNERS}
    for did in dids:
        spec = EXTENSION_DATASETS[did]
        dataset = dataset_cached(did, scale, seed)
        train, test = split_dataset(dataset, scale)
        library = get_library(spec.library)
        machine = get_machine(spec.machine)
        for name, factory in PAPER_LEARNERS.items():
            selector = AlgorithmSelector(factory).fit(train)
            result = evaluate_selector(selector, test, library, machine)
            speedups[name].append(result.mean_speedup)
    for name, values in speedups.items():
        table.rows.append((name, *values, float(np.mean(values))))
    table.note = "dx1 = MPI_Reduce, dx2 = MPI_Allgather (Open MPI, Hydra)"
    return table
