"""The eight benchmark datasets of the paper's Table II.

====  ==============  =========  ============  =========================
id    routine         library    machine       note
====  ==============  =========  ============  =========================
d1    MPI_Bcast       Open MPI   Hydra         excludes broken alg. 8
d2    MPI_Allreduce   Open MPI   Hydra
d3    MPI_Bcast       Open MPI   Jupiter       excludes broken alg. 8
d4    MPI_Allreduce   Open MPI   Jupiter
d5    MPI_Allreduce   Intel MPI  Hydra
d6    MPI_Alltoall    Intel MPI  Hydra         smaller message grid
d7    MPI_Bcast       Intel MPI  Hydra
d8    MPI_Bcast       Open MPI   SuperMUC-NG   excludes broken alg. 8
====  ==============  =========  ============  =========================

Grids follow §IV-C: message sizes 1 B .. 4 MiB (8 sizes for alltoall,
10 otherwise), the node lists of the paper plus the Table III training
node counts, and the per-machine ppn menus. The ``ci`` scale keeps the
same structure on a fraction of the grid so the full suite regenerates
in minutes.

Sample counts differ from Table II's because our parameter grids are a
curated subset of the paper's (documented in DESIGN.md §4); the
*structure* — which algorithms, which axes — matches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.bench.repro_mpi import BenchmarkSpec
from repro.bench.runner import DatasetRunner, GridSpec
from repro.collectives.base import CollectiveKind
from repro.core.dataset import PerfDataset
from repro.machine.zoo import get_machine
from repro.mpilib import get_library
from repro.utils.units import KiB, MiB


class Scale(str, enum.Enum):
    """Experiment sizing: full paper grids or CI-sized ones."""

    PAPER = "paper"
    CI = "ci"


#: fixed-size-collective message grid (§IV-C)
MSIZES_10: tuple[int, ...] = (
    1, 16, 256, KiB, 4 * KiB, 16 * KiB, 64 * KiB, 512 * KiB, MiB, 4 * MiB
)
#: alltoall message grid (8 sizes; per-rank buffers, so capped lower)
MSIZES_8: tuple[int, ...] = (
    1, 16, 256, KiB, 4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB
)

MSIZES_10_CI: tuple[int, ...] = (1, KiB, 16 * KiB, 128 * KiB, MiB, 4 * MiB)
MSIZES_8_CI: tuple[int, ...] = (1, KiB, 16 * KiB, 128 * KiB)

#: node lists = paper's dataset nodes united with Table III training nodes
HYDRA_NODES: tuple[int, ...] = (4, 7, 8, 13, 16, 19, 20, 24, 27, 32, 35, 36)
JUPITER_NODES: tuple[int, ...] = (4, 7, 8, 13, 16, 19, 20, 24, 27, 32, 35)
SUPERMUC_NODES: tuple[int, ...] = (20, 27, 32, 35, 48)

HYDRA_PPNS: tuple[int, ...] = (1, 4, 8, 10, 16, 17, 20, 24, 28, 32)
JUPITER_PPNS: tuple[int, ...] = (1, 2, 4, 8, 12, 14, 16)
SUPERMUC_PPNS: tuple[int, ...] = (1, 12, 24, 36, 48)

HYDRA_NODES_CI: tuple[int, ...] = (4, 7, 8, 13, 16)
JUPITER_NODES_CI: tuple[int, ...] = (4, 7, 8, 13, 16)
SUPERMUC_NODES_CI: tuple[int, ...] = (8, 13, 16, 19, 24)
HYDRA_PPNS_CI: tuple[int, ...] = (1, 8, 16)
JUPITER_PPNS_CI: tuple[int, ...] = (1, 8, 16)
SUPERMUC_PPNS_CI: tuple[int, ...] = (1, 12, 24)


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one Table II dataset."""

    did: str
    collective: CollectiveKind
    library: str
    machine: str
    grids: dict[Scale, GridSpec]
    exclude_algids: tuple[int, ...] = ()

    def grid(self, scale: Scale) -> GridSpec:
        return self.grids[Scale(scale)]


def _grids(
    nodes: tuple[int, ...],
    ppns: tuple[int, ...],
    msizes: tuple[int, ...],
    nodes_ci: tuple[int, ...],
    ppns_ci: tuple[int, ...],
    msizes_ci: tuple[int, ...],
) -> dict[Scale, GridSpec]:
    return {
        Scale.PAPER: GridSpec(nodes=nodes, ppns=ppns, msizes=msizes),
        Scale.CI: GridSpec(nodes=nodes_ci, ppns=ppns_ci, msizes=msizes_ci),
    }


_HYDRA_10 = _grids(
    HYDRA_NODES, HYDRA_PPNS, MSIZES_10,
    HYDRA_NODES_CI, HYDRA_PPNS_CI, MSIZES_10_CI,
)
_HYDRA_8 = _grids(
    HYDRA_NODES, HYDRA_PPNS, MSIZES_8,
    HYDRA_NODES_CI, HYDRA_PPNS_CI, MSIZES_8_CI,
)
_JUPITER_10 = _grids(
    JUPITER_NODES, JUPITER_PPNS, MSIZES_10,
    JUPITER_NODES_CI, JUPITER_PPNS_CI, MSIZES_10_CI,
)
_SUPERMUC_8 = _grids(
    SUPERMUC_NODES, SUPERMUC_PPNS,
    (1, 16, 256, 4 * KiB, 64 * KiB, 512 * KiB, MiB, 4 * MiB),
    SUPERMUC_NODES_CI, SUPERMUC_PPNS_CI, MSIZES_10_CI,
)

#: Open MPI 4.0.2's broadcast algorithm 8 is broken (paper §V-A);
#: datasets exclude it exactly as the paper did.
_BROKEN_OMPI_BCAST = (8,)

DATASETS: dict[str, DatasetSpec] = {
    "d1": DatasetSpec(
        "d1", CollectiveKind.BCAST, "Open MPI", "Hydra",
        _HYDRA_10, exclude_algids=_BROKEN_OMPI_BCAST,
    ),
    "d2": DatasetSpec("d2", CollectiveKind.ALLREDUCE, "Open MPI", "Hydra", _HYDRA_10),
    "d3": DatasetSpec(
        "d3", CollectiveKind.BCAST, "Open MPI", "Jupiter",
        _JUPITER_10, exclude_algids=_BROKEN_OMPI_BCAST,
    ),
    "d4": DatasetSpec(
        "d4", CollectiveKind.ALLREDUCE, "Open MPI", "Jupiter", _JUPITER_10
    ),
    "d5": DatasetSpec(
        "d5", CollectiveKind.ALLREDUCE, "Intel MPI", "Hydra", _HYDRA_10
    ),
    "d6": DatasetSpec(
        "d6", CollectiveKind.ALLTOALL, "Intel MPI", "Hydra", _HYDRA_8
    ),
    "d7": DatasetSpec("d7", CollectiveKind.BCAST, "Intel MPI", "Hydra", _HYDRA_10),
    "d8": DatasetSpec(
        "d8", CollectiveKind.BCAST, "Open MPI", "SuperMUC-NG",
        _SUPERMUC_8, exclude_algids=_BROKEN_OMPI_BCAST,
    ),
}


#: extension datasets beyond the paper's Table II (reduce / allgather
#: on the Open MPI façade) — same grid machinery, separate namespace so
#: Table II keeps exactly eight rows.
EXTENSION_DATASETS: dict[str, DatasetSpec] = {
    "dx1": DatasetSpec("dx1", CollectiveKind.REDUCE, "Open MPI", "Hydra", _HYDRA_10),
    "dx2": DatasetSpec(
        "dx2", CollectiveKind.ALLGATHER, "Open MPI", "Hydra", _HYDRA_8
    ),
}


def dataset_spec(did: str) -> DatasetSpec:
    """Look up a dataset recipe (paper Table II or extension)."""
    if did in DATASETS:
        return DATASETS[did]
    if did in EXTENSION_DATASETS:
        return EXTENSION_DATASETS[did]
    known = ", ".join([*DATASETS, *EXTENSION_DATASETS])
    raise KeyError(f"unknown dataset {did!r}; known: {known}")


def generate_dataset(
    did: str,
    scale: Scale | str = Scale.CI,
    seed: int = 0,
    spec: BenchmarkSpec | None = None,
    *,
    n_jobs: int | None = None,
    progress=None,
    checkpoint=None,
    resume: bool = False,
    faults=None,
    retry=None,
) -> PerfDataset:
    """Benchmark one Table II (or extension) dataset from scratch.

    Deterministic for fixed ``(did, scale, seed)``; see
    :func:`repro.experiments.cache.dataset_cached` for the disk-cached
    variant the figure drivers use. ``checkpoint``/``resume`` journal
    completed campaign chunks for bit-identical interrupt recovery
    (see :meth:`repro.bench.runner.DatasetRunner.run`).

    ``faults`` (a :class:`repro.bench.faults.FaultSpec`) runs the
    campaign under deterministic fault injection; ``retry`` bounds the
    transient-fault retry loop. Fault placement is seeded
    independently, so ``faults=None`` stays bit-identical to all
    previously generated datasets.
    """
    scale = Scale(scale)
    ds_spec = dataset_spec(did)
    machine = get_machine(ds_spec.machine)
    library = get_library(ds_spec.library)
    if spec is None:
        # CI runs fewer repetitions; paper scale uses ReproMPI's 500/1s.
        spec = BenchmarkSpec(max_nreps=500 if scale is Scale.PAPER else 25)
    runner = DatasetRunner(
        machine, library, spec, seed=seed, faults=faults, retry=retry
    )
    return runner.run(
        ds_spec.collective,
        ds_spec.grid(scale),
        name=f"{did}-{scale.value}",
        exclude_algids=ds_spec.exclude_algids,
        n_jobs=n_jobs,
        progress=progress,
        checkpoint=checkpoint,
        resume=resume,
    )
