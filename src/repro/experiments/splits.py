"""Table III train/test splits by machine and node count.

The paper's key evaluation discipline: models are trained on the node
counts a scientist would realistically benchmark (powers of two plus a
few common sizes) and tested on *odd, unseen* node counts — the
generalisation the hard-coded tuning tools of §II cannot provide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import PerfDataset
from repro.experiments.datasets import Scale


@dataclass(frozen=True)
class SplitSpec:
    """Training/test node counts for one machine (one Table III row)."""

    machine: str
    full_train: tuple[int, ...]
    small_train: tuple[int, ...]
    test: tuple[int, ...]


SPLITS: dict[tuple[str, Scale], SplitSpec] = {
    ("Hydra", Scale.PAPER): SplitSpec(
        "Hydra",
        full_train=(4, 8, 16, 20, 24, 32, 36),
        small_train=(4, 16, 36),
        test=(7, 13, 19, 27, 35),
    ),
    ("Jupiter", Scale.PAPER): SplitSpec(
        "Jupiter",
        full_train=(4, 8, 16, 20, 24, 32),
        small_train=(4, 16, 32),
        test=(7, 13, 19, 27),
    ),
    ("SuperMUC-NG", Scale.PAPER): SplitSpec(
        "SuperMUC-NG",
        full_train=(20, 32, 48),
        small_train=(20, 32, 48),
        test=(27, 35),
    ),
    # CI-scale splits keep the same odd-nodes-held-out structure.
    ("Hydra", Scale.CI): SplitSpec(
        "Hydra", full_train=(4, 8, 16), small_train=(4, 16), test=(7, 13)
    ),
    ("Jupiter", Scale.CI): SplitSpec(
        "Jupiter", full_train=(4, 8, 16), small_train=(4, 16), test=(7, 13)
    ),
    ("SuperMUC-NG", Scale.CI): SplitSpec(
        "SuperMUC-NG", full_train=(8, 16, 24), small_train=(8, 24), test=(13, 19)
    ),
}


def split_dataset(
    dataset: PerfDataset,
    scale: Scale | str = Scale.CI,
    small: bool = False,
) -> tuple[PerfDataset, PerfDataset]:
    """Split a Table II dataset into (train, test) by node counts.

    ``small=True`` uses the reduced training node list of Table IVb.
    """
    spec = SPLITS[(dataset.machine, Scale(scale))]
    train_nodes = spec.small_train if small else spec.full_train
    present = set(np.unique(dataset.nodes).tolist())
    train_nodes = tuple(n for n in train_nodes if n in present)
    test_nodes = tuple(n for n in spec.test if n in present)
    if not train_nodes or not test_nodes:
        raise ValueError(
            f"dataset {dataset.name} lacks the {dataset.machine} split nodes"
        )
    suffix = "small" if small else "full"
    return (
        dataset.filter_nodes(train_nodes, name=f"{dataset.name}-train-{suffix}"),
        dataset.filter_nodes(test_nodes, name=f"{dataset.name}-test"),
    )
