"""Plain-text rendering of experiment results.

Everything the paper shows as a figure is reproduced as a *data table*
(series of normalised runtimes, speed-ups, or selected algorithm ids);
these helpers render them readably in terminals and log files.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any


def _fmt(value: Any, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    floatfmt: str = ".3g",
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table."""
    cells = [[_fmt(v, floatfmt) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths, strict=True)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def render_bar(value: float, scale: float = 1.0, width: int = 40) -> str:
    """A crude horizontal bar for normalised-runtime 'figures'."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = int(round(min(value / scale, 1.0) * width))
    return "#" * n + "." * (width - n)
