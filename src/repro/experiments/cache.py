"""On-disk dataset cache shared by figure and table drivers.

Several exhibits consume the same dataset (d1 feeds Figure 2, Figure 4,
Figure 5 and Table IV); benchmarking it once per process — and once per
workspace thanks to the ``results/datasets`` cache — keeps the
benchmark suite honest about what is being measured.
"""

from __future__ import annotations

import logging
import os
from pathlib import Path

from repro.core.dataset import PerfDataset
from repro.experiments.datasets import Scale, generate_dataset

logger = logging.getLogger(__name__)

#: override with REPRO_CACHE_DIR; default is ./results/datasets
_ENV_VAR = "REPRO_CACHE_DIR"

_memory: dict[tuple[str, Scale, int], PerfDataset] = {}


def cache_dir() -> Path:
    return Path(os.environ.get(_ENV_VAR, "results/datasets"))


def dataset_cached(
    did: str, scale: Scale | str = Scale.CI, seed: int = 0
) -> PerfDataset:
    """Load a Table II dataset, generating (and persisting) it if needed."""
    scale = Scale(scale)
    key = (did, scale, seed)
    if key in _memory:
        return _memory[key]
    stem = cache_dir() / f"{did}-{scale.value}-s{seed}"
    if stem.with_suffix(".npz").exists() and stem.with_suffix(".json").exists():
        dataset = PerfDataset.load(stem)
    else:
        logger.info("generating dataset %s at %s scale", did, scale.value)
        dataset = generate_dataset(did, scale, seed)
        stem.parent.mkdir(parents=True, exist_ok=True)
        dataset.save(stem)
    _memory[key] = dataset
    return dataset


def clear_memory_cache() -> None:
    """Drop in-process cached datasets (tests use this)."""
    _memory.clear()
