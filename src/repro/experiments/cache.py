"""On-disk dataset cache shared by figure and table drivers.

Several exhibits consume the same dataset (d1 feeds Figure 2, Figure 4,
Figure 5 and Table IV); benchmarking it once per process — and once per
workspace thanks to the ``results/datasets`` cache — keeps the
benchmark suite honest about what is being measured.
"""

from __future__ import annotations

import logging
import os
from pathlib import Path

from repro.core.dataset import PerfDataset
from repro.experiments.datasets import Scale, generate_dataset
from repro.obs import get_telemetry

logger = logging.getLogger(__name__)

#: override with REPRO_CACHE_DIR; default is ./results/datasets
_ENV_VAR = "REPRO_CACHE_DIR"

#: in-process cache, keyed by (resolved cache dir, did, scale, seed) —
#: the directory is part of the key so tests (or drivers) that switch
#: ``REPRO_CACHE_DIR`` mid-process never see another workspace's data.
_memory: dict[tuple[str, str, Scale, int], PerfDataset] = {}


def cache_dir() -> Path:
    return Path(os.environ.get(_ENV_VAR, "results/datasets"))


def _load_or_none(stem: Path) -> PerfDataset | None:
    """Load a cached dataset, treating corruption as a cache miss.

    A torn ``.npz`` (pre-atomic-save writes could be interrupted) or a
    mangled JSON sidecar emits a structured ``cache_corrupt`` telemetry
    event (and a log line) and is discarded instead of crashing every
    exhibit that shares the dataset — a silent rebuild would hide disk
    or concurrency bugs from operators.
    """
    if not (
        stem.with_suffix(".npz").exists()
        and stem.with_suffix(".json").exists()
    ):
        return None
    try:
        return PerfDataset.load(stem)
    except Exception as exc:  # corrupt archive/sidecar: regenerate
        get_telemetry().event(
            "cache_corrupt", path=str(stem),
            error=f"{type(exc).__name__}: {exc}",
            action="regenerate",
        )
        get_telemetry().add("cache.corrupt")
        logger.warning(
            "cached dataset %s is unreadable (%s: %s); regenerating",
            stem, type(exc).__name__, exc,
        )
        return None


def dataset_cached(
    did: str, scale: Scale | str = Scale.CI, seed: int = 0
) -> PerfDataset:
    """Load a Table II dataset, generating (and persisting) it if needed."""
    scale = Scale(scale)
    telemetry = get_telemetry()
    directory = cache_dir()
    key = (str(directory.resolve()), did, scale, seed)
    if key in _memory:
        telemetry.add("cache.memory_hits")
        return _memory[key]
    stem = directory / f"{did}-{scale.value}-s{seed}"
    dataset = _load_or_none(stem)
    if dataset is None:
        telemetry.add("cache.misses")
        logger.info("generating dataset %s at %s scale", did, scale.value)
        dataset = generate_dataset(did, scale, seed)
        stem.parent.mkdir(parents=True, exist_ok=True)
        dataset.save(stem)
    else:
        telemetry.add("cache.disk_hits")
    _memory[key] = dataset
    return dataset


def clear_memory_cache() -> None:
    """Drop in-process cached datasets (tests use this)."""
    _memory.clear()
