"""Self-consistent performance guidelines (PGMPITuneLib, §VI).

Hunold & Carpen-Amarie's companion approach to this paper: instead of
learning runtimes, check *semantic performance guidelines* — a
collective must never be slower than an obvious emulation of it by
other collectives. A violated guideline pinpoints a badly selected
algorithm. The guidelines implemented here (after Träff et al.'s
self-consistent guidelines):

====  =============================================  ====================
id    guideline                                      emulation
====  =============================================  ====================
G1    Allreduce(m)  <=  Reduce(m) + Bcast(m)         reduce-then-bcast
G2    Reduce(m)     <=  Allreduce(m)                 allreduce, drop copy
G3    Bcast(m)      <=  Allreduce(m)                 allreduce with 0s
G4    Allgather(m)  <=  Alltoall(m)                  alltoall of copies
====  =============================================  ====================

``check_guidelines`` evaluates them for a strategy ("default" = the
library's decision logic, "best" = per-instance exhaustive search) on a
grid of instances; the interesting reproduction-level finding is that
the hard-coded default *violates* guidelines the tuned portfolio
satisfies — the same signal PGMPITuneLib exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.base import CollectiveKind
from repro.collectives.registry import algorithm_from_config
from repro.experiments.tables import TableData
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.mpilib.base import MPILibrary

#: (name, target collective, list of emulation collectives)
GUIDELINES: tuple[tuple[str, CollectiveKind, tuple[CollectiveKind, ...]], ...] = (
    ("G1: allreduce<=reduce+bcast", CollectiveKind.ALLREDUCE,
     (CollectiveKind.REDUCE, CollectiveKind.BCAST)),
    ("G2: reduce<=allreduce", CollectiveKind.REDUCE,
     (CollectiveKind.ALLREDUCE,)),
    ("G3: bcast<=allreduce", CollectiveKind.BCAST,
     (CollectiveKind.ALLREDUCE,)),
    ("G4: allgather<=alltoall", CollectiveKind.ALLGATHER,
     (CollectiveKind.ALLTOALL,)),
)


@dataclass(frozen=True)
class GuidelineCheck:
    """Outcome of one guideline on one instance."""

    guideline: str
    nodes: int
    ppn: int
    msize: int
    target_time: float
    emulation_time: float

    @property
    def violated(self) -> bool:
        """True when the emulation beats the native collective."""
        return self.target_time > self.emulation_time * 1.0

    @property
    def severity(self) -> float:
        """How much slower the native call is (1.0 = guideline met)."""
        return self.target_time / self.emulation_time


def _strategy_time(
    machine: MachineModel,
    library: MPILibrary,
    topo: Topology,
    kind: CollectiveKind,
    nbytes: int,
    strategy: str,
) -> float:
    if strategy == "default":
        cfg = library.default_config(machine, topo, kind, nbytes)
        return algorithm_from_config(cfg).base_time(machine, topo, nbytes)
    if strategy == "best":
        best = float("inf")
        for cfg in library.config_space(kind).configs:
            algo = algorithm_from_config(cfg)
            if not algo.supported(topo, nbytes):
                continue
            best = min(best, algo.base_time(machine, topo, nbytes))
        return best
    raise ValueError(f"unknown strategy {strategy!r}")


def check_guidelines(
    machine: MachineModel,
    library: MPILibrary,
    instances: list[tuple[int, int, int]],
    strategy: str = "default",
) -> list[GuidelineCheck]:
    """Evaluate every guideline on every ``(nodes, ppn, msize)`` instance."""
    checks: list[GuidelineCheck] = []
    supported = set(library.supported_collectives())
    for name, target, emulation in GUIDELINES:
        if target not in supported or any(e not in supported for e in emulation):
            continue
        for nodes, ppn, msize in instances:
            topo = Topology(nodes, ppn)
            t_target = _strategy_time(
                machine, library, topo, target, msize, strategy
            )
            t_emulation = sum(
                _strategy_time(machine, library, topo, e, msize, strategy)
                for e in emulation
            )
            checks.append(
                GuidelineCheck(
                    guideline=name,
                    nodes=nodes,
                    ppn=ppn,
                    msize=msize,
                    target_time=t_target,
                    emulation_time=t_emulation,
                )
            )
    return checks


def guidelines_table(
    machine: MachineModel,
    library: MPILibrary,
    instances: list[tuple[int, int, int]],
) -> TableData:
    """Violation summary for the default vs the exhaustive-best strategy."""
    table = TableData(
        exhibit=f"Performance guidelines on {machine.name} ({library.name})",
        columns=(
            "guideline", "checked",
            "violations_default", "worst_default",
            "violations_best", "worst_best",
        ),
    )
    default = check_guidelines(machine, library, instances, "default")
    best = check_guidelines(machine, library, instances, "best")
    names = sorted({c.guideline for c in default})
    for name in names:
        d = [c for c in default if c.guideline == name]
        b = [c for c in best if c.guideline == name]
        table.rows.append(
            (
                name,
                len(d),
                sum(c.violated for c in d),
                max(c.severity for c in d),
                sum(c.violated for c in b),
                max(c.severity for c in b),
            )
        )
    table.note = (
        "violations: instances where emulating the collective beats the "
        "strategy's native choice"
    )
    return table
