"""Drivers regenerating the paper's tables.

* Table I — hardware overview (machine zoo parameters),
* Table II — dataset overview (generated dataset summaries),
* Table III — train/test splits,
* Table IV — overall prediction quality: mean speed-up over the default
  strategy per dataset and learner, for the full (IVa) and small (IVb)
  training splits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluation import evaluate_selector
from repro.core.selector import AlgorithmSelector
from repro.experiments.cache import dataset_cached
from repro.experiments.datasets import DATASETS, Scale
from repro.experiments.report import render_table
from repro.experiments.splits import SPLITS
from repro.experiments.splits import split_dataset
from repro.machine.zoo import MACHINES, get_machine
from repro.ml import PAPER_LEARNERS
from repro.mpilib import get_library


@dataclass
class TableData:
    exhibit: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    note: str = ""

    def render(self, floatfmt: str = ".3g") -> str:
        text = render_table(self.columns, self.rows, floatfmt, title=self.exhibit)
        if self.note:
            text += f"\n({self.note})"
        return text

    def cell(self, row: int, column: str):
        return self.rows[row][self.columns.index(column)]


# ----------------------------------------------------------------------
def table1() -> TableData:
    """Table I: hardware overview of the machine zoo."""
    table = TableData(
        exhibit="Table I: hardware overview",
        columns=(
            "machine", "n", "max_ppn", "processor", "interconnect",
            "link_GB/s", "inject_GB/s", "latency_us",
        ),
    )
    for machine in MACHINES.values():
        if machine.name == "TinyTestbed":
            continue
        table.rows.append(
            (
                machine.name,
                machine.max_nodes,
                machine.max_ppn,
                machine.processor,
                machine.interconnect,
                machine.link_bandwidth() / 1e9,
                machine.injection_bandwidth() / 1e9,
                machine.alpha_inter * 1e6,
            )
        )
    return table


def table2(scale: Scale | str = Scale.CI, seed: int = 0) -> TableData:
    """Table II: overview of the generated datasets d1-d8."""
    table = TableData(
        exhibit=f"Table II: datasets ({Scale(scale).value} scale)",
        columns=(
            "dataset", "routine", "library", "machine",
            "#algorithms", "#nodes", "#ppn", "#msg_sizes", "#samples",
        ),
    )
    for did in DATASETS:
        summary = dataset_cached(did, scale, seed).summary()
        summary["dataset"] = did  # strip the scale suffix for the exhibit
        table.rows.append(tuple(summary[c] for c in table.columns))
    return table


def table3(scale: Scale | str = Scale.CI) -> TableData:
    """Table III: training and test node counts per machine."""
    scale = Scale(scale)
    table = TableData(
        exhibit=f"Table III: train/test node splits ({scale.value} scale)",
        columns=("machine", "full_train", "small_train", "test"),
    )
    for (machine, s), spec in SPLITS.items():
        if s is scale:
            table.rows.append(
                (
                    machine,
                    ",".join(map(str, spec.full_train)),
                    ",".join(map(str, spec.small_train)),
                    ",".join(map(str, spec.test)),
                )
            )
    return table


# ----------------------------------------------------------------------
def table4(
    scale: Scale | str = Scale.CI,
    seed: int = 0,
    small: bool = False,
    learners: tuple[str, ...] = ("KNN", "GAM", "XGBoost"),
    dids: tuple[str, ...] | None = None,
) -> TableData:
    """Table IV: mean speed-up over the default strategy.

    ``small=False`` reproduces Table IVa (large training dataset),
    ``small=True`` Table IVb. Cells are the arithmetic mean, over all
    test instances of a dataset, of ``t_default / t_predicted``.
    """
    scale = Scale(scale)
    dids = dids or tuple(DATASETS)
    variant = "b (small training set)" if small else "a (large training set)"
    table = TableData(
        exhibit=f"Table IV{variant}: speed-up over default "
        f"({scale.value} scale)",
        columns=("method", *dids, "mean"),
    )
    speedups: dict[str, list[float]] = {learner: [] for learner in learners}
    for did in dids:
        spec = DATASETS[did]
        dataset = dataset_cached(did, scale, seed)
        train, test = split_dataset(dataset, scale, small=small)
        library = get_library(spec.library)
        machine = get_machine(spec.machine)
        for learner in learners:
            selector = AlgorithmSelector(PAPER_LEARNERS[learner]).fit(train)
            result = evaluate_selector(selector, test, library, machine)
            speedups[learner].append(result.mean_speedup)
    for learner in learners:
        values = speedups[learner]
        table.rows.append((learner, *values, float(np.mean(values))))
    table.note = "speedup > 1: predicted algorithm beats the library default"
    return table


# ----------------------------------------------------------------------
def dataset_overview_row(did: str, scale: Scale | str, seed: int = 0) -> dict:
    """One Table II row (used by tests without rendering)."""
    return dataset_cached(did, scale, seed).summary()
