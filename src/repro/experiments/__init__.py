"""Paper experiment drivers: datasets d1-d8 and every table/figure.

Each driver regenerates the data behind one exhibit of the paper, at
either ``paper`` scale (full Table II grids) or ``ci`` scale (same
structure, smaller grids — minutes on a laptop).
"""

from repro.experiments.datasets import (
    DATASETS,
    DatasetSpec,
    Scale,
    generate_dataset,
)
from repro.experiments.splits import SPLITS, SplitSpec, split_dataset
from repro.experiments.cache import dataset_cached

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "Scale",
    "generate_dataset",
    "SPLITS",
    "SplitSpec",
    "split_dataset",
    "dataset_cached",
]
