"""Per-learner regression-error view of the paper datasets.

The paper reports selection quality (speed-ups), noting that classic
metrics like MAE/RMSE were only "continuously monitored … to avoid
overfitting" (§V). This driver produces that monitoring view: for one
dataset, the cross-instance prediction error of each learner's
per-configuration models on the held-out node counts, aggregated over
configurations.

MAPE is the headline number — runtimes span four orders of magnitude,
so relative error is what selection quality depends on.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import instance_features
from repro.experiments.cache import dataset_cached
from repro.experiments.datasets import Scale
from repro.experiments.splits import split_dataset
from repro.experiments.tables import TableData
from repro.ml import PAPER_LEARNERS, mape, rmse
from repro.ml.linear import RidgeRegressor


def _learners():
    return {
        **PAPER_LEARNERS,
        "Ridge-log": lambda: RidgeRegressor(log_target=True),
    }


def model_error_table(
    did: str = "d1",
    scale: Scale | str = Scale.CI,
    seed: int = 0,
    min_samples: int = 8,
) -> TableData:
    """Held-out regression error per learner, aggregated over configs."""
    scale = Scale(scale)
    dataset = dataset_cached(did, scale, seed)
    train, test = split_dataset(dataset, scale)
    X_train = instance_features(train.nodes, train.ppn, train.msize)
    X_test = instance_features(test.nodes, test.ppn, test.msize)

    table = TableData(
        exhibit=f"Model error on {did} held-out nodes ({scale.value} scale)",
        columns=(
            "learner", "configs", "median_mape", "p90_mape", "median_rmse_us",
        ),
    )
    for name, factory in _learners().items():
        mapes, rmses = [], []
        for cid in range(len(dataset.configs)):
            train_mask = train.config_id == cid
            test_mask = test.config_id == cid
            if train_mask.sum() < min_samples or test_mask.sum() == 0:
                continue
            model = factory()
            model.fit(X_train[train_mask], train.time[train_mask])
            pred = model.predict(X_test[test_mask])
            truth = test.time[test_mask]
            mapes.append(mape(truth, pred))
            rmses.append(rmse(truth, pred))
        table.rows.append(
            (
                name,
                len(mapes),
                float(np.median(mapes)),
                float(np.quantile(mapes, 0.9)),
                float(np.median(rmses)) * 1e6,
            )
        )
    table.note = (
        "per-configuration models evaluated on unseen node counts; "
        "MAPE is what argmin selection quality tracks"
    )
    return table
