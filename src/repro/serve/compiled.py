"""Decision-table compiler: branchless sub-microsecond lookups.

The paper's end product is literally a decision table — Open MPI
dynamic rules mapping ``(collective, msize, nodes, ppn)`` to a forced
algorithm configuration — so once selection is decided, runtime lookup
should cost an array index, not a model evaluation (Nuriyev &
Lastovetsky make the same argument from the analytical side). This
module lowers both servable model families into one flat layout,
:class:`CompiledTable`:

* ``node_index`` / ``ppn_index`` — small dense int32 maps from the raw
  query value to an axis position. The final slot is the overflow cell
  and carries ``-1`` (off-table); a rules table, which ignores the
  allocation entirely, uses single-slot maps that accept everything.
* ``msize_lo`` / ``msize_hi`` — 64 per-bucket int64 admission ranges,
  bucket = ``msize.bit_length()`` (0 for ``msize <= 0``). A query is
  answered only when ``lo[b] <= msize <= hi[b]``; buckets the table
  cannot answer *exactly* keep an empty range (``lo > hi``), so the
  admission compare doubles as the coverage check.
* ``cells`` — contiguous int32 of shape ``(64, NN, NP)``: the winning
  config id per (bucket, node, ppn) cell, ``-1`` for uncovered cells.

Lookups run in the runtime-compiled C kernel
(:func:`repro.ml._ckernel.table_lookup`) when the toolchain allows,
else in the vectorised numpy twin
(:func:`repro.ml.kernels.table_lookup_numpy`); scalar lookups use
plain-list mirrors, which beat numpy scalar indexing ~10x at batch 1.

**The table never guesses.** A cell is populated only where the
lowering is provably bit-identical to the interpreted model:

* a :class:`~repro.serve.rules.RulesModel` selects a constant config
  on every inter-boundary interval, so a bucket is admitted up to (not
  including) the first rule boundary strictly inside it — full-bucket
  coverage when rule msizes are powers of two, a partial prefix
  otherwise;
* a selector's :class:`~repro.core.surface.DecisionSurface` is exact
  only at real grid points, so admission is pinned to the grid msize
  itself (``lo == hi``) and buckets shared by several grid msizes are
  dropped.

Everything else returns ``-1`` and the serving layer falls through to
the interpreted surface/selector/fallback chain, which is what keeps
`PredictionService`'s bit-identity contract intact.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.core.surface import DecisionSurface
from repro.ml import _ckernel
from repro.ml.kernels import table_lookup_numpy
from repro.serve.rules import RulesModel

_INT64_MAX = (1 << 63) - 1
_N_BUCKETS = 64
#: refuse dense node/ppn index maps beyond this axis value — a table
#: for an absurd axis would spend more on memory than it saves on time
_DENSE_CAP = 1 << 16


class CompiledTable:
    """One collective's decision table in branchless flat layout."""

    __slots__ = (
        "collective", "version", "configs",
        "node_index", "ppn_index", "msize_lo", "msize_hi", "cells",
        "dropped_buckets", "partial_buckets",
        "_node_list", "_ppn_list", "_lo_list", "_hi_list",
        "_cells_list", "_nn", "_np", "_c_fixed",
    )

    def __init__(
        self,
        *,
        collective: CollectiveKind,
        version: int,
        configs: tuple[AlgorithmConfig, ...],
        node_index: np.ndarray,
        ppn_index: np.ndarray,
        msize_lo: np.ndarray,
        msize_hi: np.ndarray,
        cells: np.ndarray,
        dropped_buckets: int = 0,
        partial_buckets: int = 0,
    ) -> None:
        self.collective = collective
        self.version = version
        self.configs = configs
        self.node_index = np.ascontiguousarray(node_index, dtype=np.int32)
        self.ppn_index = np.ascontiguousarray(ppn_index, dtype=np.int32)
        self.msize_lo = np.ascontiguousarray(msize_lo, dtype=np.int64)
        self.msize_hi = np.ascontiguousarray(msize_hi, dtype=np.int64)
        self.cells = np.ascontiguousarray(cells, dtype=np.int32)
        assert self.cells.shape[0] == _N_BUCKETS
        assert len(self.msize_lo) == len(self.msize_hi) == _N_BUCKETS
        self.dropped_buckets = dropped_buckets
        self.partial_buckets = partial_buckets
        # plain-list mirrors for the scalar hot path: attribute + list
        # indexing on interned ints, no numpy scalar boxing per query
        self._node_list = self.node_index.tolist()
        self._ppn_list = self.ppn_index.tolist()
        self._lo_list = self.msize_lo.tolist()
        self._hi_list = self.msize_hi.tolist()
        self._cells_list = self.cells.ravel().tolist()
        self._nn = self.cells.shape[1]
        self._np = self.cells.shape[2]
        #: lazily-built raw-address args for the C kernel (per table —
        #: the arrays above outlive it, so the addresses stay valid)
        self._c_fixed: tuple | None = None

    # -- lookups -------------------------------------------------------
    def lookup(self, nodes: int, ppn: int, msize: int) -> int:
        """Config id for one instance, ``-1`` = fall through.

        Pure Python on the list mirrors; ``msize`` may be an arbitrary
        Python int (anything past the int64 buckets falls through).
        """
        nl = self._node_list
        i = nl[nodes] if 0 <= nodes < len(nl) else nl[-1]
        if i < 0:
            return -1
        pl = self._ppn_list
        j = pl[ppn] if 0 <= ppn < len(pl) else pl[-1]
        if j < 0:
            return -1
        b = msize.bit_length() if msize > 0 else 0
        if b >= _N_BUCKETS or not self._lo_list[b] <= msize <= self._hi_list[b]:
            return -1
        return self._cells_list[(b * self._nn + i) * self._np + j]

    def lookup_many(
        self, nodes: np.ndarray, ppn: np.ndarray, msize: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`lookup` over contiguous int64 columns."""
        if _ckernel.available():
            fixed = self._c_fixed
            if fixed is None:
                fixed = self._c_fixed = _ckernel.table_fixed_args(
                    self.node_index, self.ppn_index,
                    self.msize_lo, self.msize_hi, self.cells,
                )
            return _ckernel.table_lookup(nodes, ppn, msize, fixed)
        return table_lookup_numpy(
            nodes, ppn, msize,
            self.node_index, self.ppn_index,
            self.msize_lo, self.msize_hi, self.cells,
        )

    # -- introspection -------------------------------------------------
    def coverage(self) -> dict:
        """Size/coverage snapshot for ``PredictionService.stats()``."""
        return {
            "buckets": int(np.count_nonzero(self.msize_lo <= self.msize_hi)),
            "partial_buckets": self.partial_buckets,
            "dropped_buckets": self.dropped_buckets,
            "cells": int(np.count_nonzero(self.cells >= 0)),
            "configs": len(self.configs),
        }


def _bucket_range(bucket: int) -> tuple[int, int]:
    """The int64 msize interval ``[lo, hi]`` a log2 bucket spans."""
    if bucket == 0:
        return 0, 0
    return 1 << (bucket - 1), min((1 << bucket) - 1, _INT64_MAX)


def compile_rules_model(model: RulesModel, version: int) -> CompiledTable:
    """Lower a resolved rules table into a :class:`CompiledTable`.

    The bracket lookup ("largest rule msize <= query wins") is constant
    between consecutive rule boundaries, so each bucket is admitted
    from its start up to the first boundary strictly inside it — the
    interpreted path keeps answering the remainder of a partial bucket.
    The allocation axes collapse to a single always-match cell because
    ``RulesModel.select_configs`` ignores nodes/ppn by construction.
    """
    bounds = [int(m) for m in model.bracket_bounds]
    if not bounds:
        raise ValueError("cannot compile an empty rules table")
    lo = np.ones(_N_BUCKETS, dtype=np.int64)
    hi = np.zeros(_N_BUCKETS, dtype=np.int64)
    cells = np.full((_N_BUCKETS, 1, 1), -1, dtype=np.int32)
    partial = 0
    for bucket in range(_N_BUCKETS):
        blo, bhi = _bucket_range(bucket)
        nxt = bisect_right(bounds, blo)
        if nxt < len(bounds) and bounds[nxt] <= bhi:
            bhi = bounds[nxt] - 1  # boundary inside: admit the prefix
            partial += 1
        lo[bucket] = blo
        hi[bucket] = bhi
        cells[bucket, 0, 0] = max(nxt - 1, 0)  # clip below first rule
    return CompiledTable(
        collective=model.collective,
        version=version,
        configs=model.configs,
        node_index=np.zeros(1, dtype=np.int32),
        ppn_index=np.zeros(1, dtype=np.int32),
        msize_lo=lo,
        msize_hi=hi,
        cells=cells,
        partial_buckets=partial,
    )


def _dense_index(axis: np.ndarray) -> np.ndarray:
    """Dense value -> axis-position map with a trailing overflow slot."""
    top = int(axis[-1])
    if top > _DENSE_CAP:
        raise ValueError(
            f"axis value {top} too large for a dense index map "
            f"(cap {_DENSE_CAP})"
        )
    index = np.full(top + 2, -1, dtype=np.int32)
    index[axis] = np.arange(len(axis), dtype=np.int32)
    return index


def compile_surface(
    surface: DecisionSurface, collective: CollectiveKind, version: int
) -> CompiledTable:
    """Lower a materialised decision surface into a :class:`CompiledTable`.

    Only exact grid points are admitted (``lo == hi`` per bucket): an
    exact cell's argmin came from a real ``predict_times`` row for that
    instance, so serving it is bit-identical to the cold selector;
    nearest-cell snapping stays the business of the interpreted
    surface mode. A bucket shared by several grid msizes is dropped —
    one admission range cannot pin two exact points.
    """
    lo = np.ones(_N_BUCKETS, dtype=np.int64)
    hi = np.zeros(_N_BUCKETS, dtype=np.int64)
    cells = np.full(
        (_N_BUCKETS, len(surface.nodes_axis), len(surface.ppn_axis)),
        -1,
        dtype=np.int32,
    )
    buckets: dict[int, list[int]] = {}
    for k, m in enumerate(surface.msize_axis.tolist()):
        bucket = m.bit_length() if m > 0 else 0
        buckets.setdefault(bucket, []).append(k)
    dropped = 0
    for bucket, positions in buckets.items():
        if len(positions) > 1:
            dropped += 1
            continue
        k = positions[0]
        lo[bucket] = hi[bucket] = int(surface.msize_axis[k])
        cells[bucket] = surface.best_cid[:, :, k]
    return CompiledTable(
        collective=collective,
        version=version,
        configs=surface.configs,
        node_index=_dense_index(surface.nodes_axis),
        ppn_index=_dense_index(surface.ppn_axis),
        msize_lo=lo,
        msize_hi=hi,
        cells=cells,
        dropped_buckets=dropped,
    )


def compile_servable(model, version: int) -> CompiledTable | None:
    """Lower any servable with an exact table form; ``None`` = skip tier.

    Rules models lower directly; selector-backed models lower through
    their materialised surface (one batched ``predict_times`` sweep).
    Anything else — wrappers, test doubles, custom servables — has no
    provably-identical flat form, so the compiled tier stays out of
    the way and every request falls through to the interpreted path.
    """
    if isinstance(model, RulesModel):
        return compile_rules_model(model, version)
    build = getattr(model, "build_surface", None)
    if build is None:
        return None
    surface = build()
    if not isinstance(surface, DecisionSurface):
        return None
    return compile_surface(surface, model.collective, version)


__all__ = [
    "CompiledTable",
    "compile_rules_model",
    "compile_servable",
    "compile_surface",
]
