"""Prediction serving layer: the tuner as a servable component.

The paper's end product is an algorithm-selection oracle queried at
``mpirun`` time; this package is the request path that makes the oracle
cheap enough to sit on that critical path and safe enough to keep
running while models change underneath it:

* :class:`~repro.serve.registry.ModelRegistry` — one live, versioned
  model per collective; atomic hot-reload of tuned rule sets with
  validation **before** the swap and graceful degradation to the
  library default.
* :class:`~repro.serve.service.PredictionService` — request
  batching/coalescing (concurrent misses for one collective merge into
  a single vectorised lookup), an interned-key recommendation LRU, and
  lazily materialised per-collective decision-surface shards.
* :mod:`repro.serve.rules` — Open MPI dynamic rules files as servable
  models, parsed and re-rendered byte-stably.
* :mod:`repro.serve.compiled` — the decision-table compiler: live
  models lowered into flat branchless lookup tables, the opt-in L0
  tier that answers covered instances in one array index.
* :mod:`repro.serve.loop` — the stdin/JSONL request loop behind
  ``mpicollpred serve``.

See ``docs/serving.md`` for the architecture, cache levels, reload
protocol and failure modes.
"""

from repro.serve.cache import KeyInterner, LRUCache
from repro.serve.chaos import ChaosEvent, FleetChaosPlan, build_plan
from repro.serve.compiled import (
    CompiledTable,
    compile_rules_model,
    compile_servable,
    compile_surface,
)
from repro.serve.loop import handle_request, serve_lines
from repro.serve.exporter import render_prometheus, sanitize_metric_name
from repro.serve.fleet import (
    Fleet,
    FleetSpec,
    FleetSupervisor,
    FleetThread,
    HashRing,
    OverloadedError,
    WorkerError,
)
from repro.serve.registry import (
    ModelRegistry,
    ModelVersion,
    ReloadError,
    SelectorModel,
    ServableModel,
    StagedModel,
)
from repro.serve.rules import (
    RuleSet,
    RulesModel,
    RulesResolutionError,
    config_rule_key,
)
from repro.serve.service import PredictionService, Recommendation

__all__ = [
    "ChaosEvent",
    "CompiledTable",
    "Fleet",
    "FleetChaosPlan",
    "FleetSpec",
    "FleetSupervisor",
    "FleetThread",
    "HashRing",
    "KeyInterner",
    "LRUCache",
    "ModelRegistry",
    "ModelVersion",
    "OverloadedError",
    "PredictionService",
    "Recommendation",
    "ReloadError",
    "RuleSet",
    "RulesModel",
    "RulesResolutionError",
    "SelectorModel",
    "ServableModel",
    "StagedModel",
    "WorkerError",
    "build_plan",
    "compile_rules_model",
    "compile_servable",
    "compile_surface",
    "config_rule_key",
    "handle_request",
    "render_prometheus",
    "sanitize_metric_name",
    "serve_lines",
]
