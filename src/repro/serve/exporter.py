"""Prometheus text-format export of the serving layer's telemetry.

One pure function, :func:`render_prometheus`, turns counter / gauge /
histogram snapshots (the :class:`repro.obs.Telemetry` shapes) into the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ that a
``GET /metrics`` scrape returns. Everything here is deterministic and
stateless so the fleet front-end can render a scrape from freshly
merged worker counters without touching the telemetry hub, and the
golden-file test can pin the exact bytes.

Naming rules (pinned by ``tests/serve/test_exporter.py``):

* dotted telemetry names flatten to underscores
  (``serve.l1.hits`` -> ``serve_l1_hits``), any other invalid
  character is replaced by ``_`` too;
* counters gain the conventional ``_total`` suffix;
* a small rename table normalises grammatical-singular counter names
  to the plural Prometheus convention (``serve.compiled.hit`` ->
  ``serve_compiled_hits_total``);
* histograms render the native cumulative ``_bucket{le="..."}`` series
  plus ``_sum``/``_count``, and the interpolated p50/p99/p999 ride
  along as ``<name>_p50`` ... gauges so a dashboards query needs no
  ``histogram_quantile`` round trip.
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.obs.telemetry import HistogramSnapshot

#: telemetry-name -> metric-name overrides (before the _total suffix);
#: everything not listed goes through :func:`sanitize_metric_name`
COUNTER_RENAMES: dict[str, str] = {
    "serve.compiled.hit": "serve_compiled_hits",
    "serve.compiled.fallthrough": "serve_compiled_fallthroughs",
    "serve.l1.stale": "serve_l1_stale_hits",
}

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")


def sanitize_metric_name(name: str) -> str:
    """A valid Prometheus metric name for a dotted telemetry name."""
    flat = _INVALID_CHARS.sub("_", name.replace(".", "_"))
    if _INVALID_FIRST.match(flat):
        flat = f"_{flat}"
    return flat


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` line payload (backslash and newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    """Escape a label value (backslash, double-quote, newline)."""
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Numbers the way Prometheus expects them (ints stay integral)."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _le_label(bound: float) -> str:
    return _format_value(bound)


def render_counter(name: str, value: int, *, help_text: str = "") -> list[str]:
    metric = COUNTER_RENAMES.get(name) or sanitize_metric_name(name)
    if not metric.endswith("_total"):
        metric += "_total"
    lines = []
    if help_text:
        lines.append(f"# HELP {metric} {escape_help(help_text)}")
    lines.append(f"# TYPE {metric} counter")
    lines.append(f"{metric} {_format_value(value)}")
    return lines


def render_gauge(
    name: str, value: float | Mapping[str, float], *, help_text: str = ""
) -> list[str]:
    """One gauge family; a mapping value renders one labelled series
    per entry (keys are pre-rendered label bodies, e.g. ``worker="0"``),
    sorted so scrapes stay byte-stable."""
    metric = sanitize_metric_name(name)
    lines = []
    if help_text:
        lines.append(f"# HELP {metric} {escape_help(help_text)}")
    lines.append(f"# TYPE {metric} gauge")
    if isinstance(value, Mapping):
        for labels in sorted(value):
            lines.append(
                f"{metric}{{{labels}}} {_format_value(value[labels])}"
            )
        if not value:
            # an empty family still needs a sample or the TYPE line
            # dangles; 0 with no labels is the conventional placeholder
            lines.append(f"{metric} 0")
    else:
        lines.append(f"{metric} {_format_value(value)}")
    return lines


def render_histogram(
    name: str, snap: HistogramSnapshot, *, help_text: str = ""
) -> list[str]:
    """Native histogram series plus p50/p99/p999 convenience gauges."""
    metric = sanitize_metric_name(name)
    lines = []
    if help_text:
        lines.append(f"# HELP {metric} {escape_help(help_text)}")
    lines.append(f"# TYPE {metric} histogram")
    cumulative = 0
    for bound, count in zip(snap.bounds, snap.counts, strict=False):
        cumulative += count
        lines.append(
            f'{metric}_bucket{{le="{_le_label(bound)}"}} {cumulative}'
        )
    lines.append(f'{metric}_bucket{{le="+Inf"}} {snap.total}')
    lines.append(f"{metric}_sum {_format_value(snap.sum)}")
    lines.append(f"{metric}_count {snap.total}")
    if snap.total:
        for quantile_name, value in snap.percentiles().items():
            lines.append(f"# TYPE {metric}_{quantile_name} gauge")
            lines.append(
                f"{metric}_{quantile_name} {_format_value(value)}"
            )
    return lines


def render_prometheus(
    counters: Mapping[str, int],
    gauges: Mapping[str, float | Mapping[str, float]] | None = None,
    histograms: Mapping[str, HistogramSnapshot] | None = None,
    *,
    help_texts: Mapping[str, str] | None = None,
) -> str:
    """The full scrape payload: counters, then gauges, then histograms.

    Families are emitted in sorted-name order inside each section so
    successive scrapes of the same process diff cleanly and the golden
    test stays byte-stable. The returned text ends with a newline and
    an ``# EOF`` marker (harmless to Prometheus, makes truncated
    responses detectable to the smoke tests).
    """
    help_texts = help_texts or {}
    lines: list[str] = []
    for name in sorted(counters):
        lines.extend(
            render_counter(
                name, counters[name], help_text=help_texts.get(name, "")
            )
        )
    for name in sorted(gauges or {}):
        lines.extend(
            render_gauge(
                name, gauges[name], help_text=help_texts.get(name, "")
            )
        )
    for name in sorted(histograms or {}):
        lines.extend(
            render_histogram(
                name, histograms[name], help_text=help_texts.get(name, "")
            )
        )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


__all__ = [
    "COUNTER_RENAMES",
    "escape_help",
    "escape_label_value",
    "render_counter",
    "render_gauge",
    "render_histogram",
    "render_prometheus",
    "sanitize_metric_name",
]
