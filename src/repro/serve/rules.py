"""Rule-set backed servable models.

The deployment artifact of the whole pipeline is an Open MPI
``coll_tuned`` dynamic rules file (:mod:`repro.core.config_gen`): a
per-allocation table mapping message sizes to forced algorithm
configurations, loaded by ``mpirun`` at startup. The serving layer
treats such a file as a *model*: :class:`RuleSet` parses one losslessly
(structure **and** the allocation recorded in its comments), resolves
every rule back to the library's :class:`~repro.collectives.base.AlgorithmConfig`
space, and re-renders byte-identically — the golden round-trip tests
pin this down, because a rules file that mutates on its way through the
registry is a rules file we cannot trust to hot-reload.

Selection semantics mirror Open MPI's ``coll_tuned`` lookup: the rule
with the largest message size not exceeding the query wins; queries
below the smallest rule use the first rule.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path

import numpy as np

from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.core.config_gen import (
    parse_ompi_rules,
    render_ompi_rules,
    validate_rules,
)
from repro.mpilib.base import MPILibrary

#: comm-size comment written by render_ompi_rules — carries the
#: allocation split that the numeric payload (comm size only) loses
_ALLOC_RE = re.compile(r"\((\d+)\s+nodes\s+x\s+(\d+)\s+ppn\)")


class RulesResolutionError(ValueError):
    """A parsed rule does not map back onto the library's config space."""


def config_rule_key(config: AlgorithmConfig) -> tuple[int, int, int]:
    """The ``(algid, fanout, segsize)`` triple a rules file stores.

    Exactly the lossy projection :func:`~repro.core.config_gen.render_ompi_rules`
    applies when writing a rule line; the inverse lookup table in
    :meth:`RuleSet.resolve` is built from it.
    """
    params = config.param_dict
    fanout = params.get("chains", params.get("radix", 0)) or 0
    seg = params.get("segsize") or 0
    return config.algid, int(fanout), int(seg)


@dataclass(frozen=True)
class RuleSet:
    """One parsed rules file: allocation + ordered (msize -> rule) table."""

    collective: CollectiveKind
    nodes: int
    ppn: int
    rules: tuple[tuple[int, int, int, int], ...]  #: (msize, algid, fanout, seg)

    @property
    def comm_size(self) -> int:
        return self.nodes * self.ppn

    @staticmethod
    def parse(text: str) -> "RuleSet":
        """Parse a dynamic rules file, recovering the allocation.

        The numeric payload goes through
        :func:`~repro.core.config_gen.parse_ompi_rules`; the
        ``(N nodes x P ppn)`` comment written by the renderer recovers
        the allocation split. Hand-written files without the comment
        degrade to ``(comm_size, 1)`` — still servable, no longer
        byte-stable to re-render.
        """
        kind, comm_size, rules = parse_ompi_rules(text)
        match = _ALLOC_RE.search(text)
        if match:
            nodes, ppn = int(match.group(1)), int(match.group(2))
            if nodes * ppn != comm_size:
                raise ValueError(
                    f"allocation comment ({nodes} x {ppn}) contradicts "
                    f"comm size {comm_size}"
                )
        else:
            nodes, ppn = comm_size, 1
        return RuleSet(
            collective=kind, nodes=nodes, ppn=ppn, rules=tuple(rules)
        )

    @staticmethod
    def load(path: str | Path) -> "RuleSet":
        return RuleSet.parse(Path(path).read_text())

    def resolve(self, library: MPILibrary) -> "RulesModel":
        """Map every rule onto the library's configuration space.

        Raises :class:`RulesResolutionError` when a rule names an
        ``(algid, fanout, segsize)`` triple the library cannot force —
        the registry rejects such a file instead of serving from it.
        """
        msizes = [m for m, _, _, _ in self.rules]
        if msizes != sorted(msizes):
            # the bracket lookup in select_configs binary-searches the
            # msize column; an unsorted table would silently misroute
            raise RulesResolutionError(
                "rule message sizes must be sorted ascending"
            )
        space = library.config_space(self.collective).configs
        by_key: dict[tuple[int, int, int], AlgorithmConfig] = {}
        for config in space:
            by_key.setdefault(config_rule_key(config), config)
        configs: list[AlgorithmConfig] = []
        for msize, algid, fanout, seg in self.rules:
            config = by_key.get((algid, fanout, seg))
            if config is None:
                raise RulesResolutionError(
                    f"rule (msize={msize}) forces (algid={algid}, "
                    f"fanout={fanout}, segsize={seg}) which is not in "
                    f"{library.name}'s {self.collective} space"
                )
            configs.append(config)
        return RulesModel(rule_set=self, configs=tuple(configs))

    def render(self, library: MPILibrary) -> str:
        """Re-render through the canonical writer (byte-stable round trip)."""
        model = self.resolve(library)
        table = [(m, c) for (m, _, _, _), c in zip(self.rules, model.configs, strict=True)]
        return render_ompi_rules(self.collective, self.nodes, self.ppn, table)


@dataclass(frozen=True)
class RulesModel:
    """A servable model backed by a resolved rules table.

    ``select_configs`` implements the ``coll_tuned`` msize bracket
    lookup; every instance is covered (a rules file always answers), so
    the registry's default-config fallback never fires for it.
    """

    rule_set: RuleSet
    configs: tuple[AlgorithmConfig, ...]

    #: serving grids are anchored on the allocation the table was tuned
    #: for — one (nodes, ppn) cell, the file's msize axis
    @property
    def grid_axes(self) -> tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]:
        return (
            (self.rule_set.nodes,),
            (self.rule_set.ppn,),
            tuple(m for m, _, _, _ in self.rule_set.rules),
        )

    @property
    def collective(self) -> CollectiveKind:
        return self.rule_set.collective

    @cached_property
    def bracket_bounds(self) -> np.ndarray:
        """The sorted rule msize column as int64 (bracket search keys).

        Cached: the table is immutable, and both the interpreted lookup
        and the decision-table compiler walk these bounds — rebuilding
        the array per ``select_configs`` call was pure allocation
        traffic on the serving hot path.
        """
        return np.asarray(
            [m for m, _, _, _ in self.rule_set.rules], dtype=np.int64
        )

    def describe(self) -> str:
        return (
            f"rules[{self.collective} {self.rule_set.nodes}x"
            f"{self.rule_set.ppn}, {len(self.configs)} rules]"
        )

    def select_configs(
        self,
        nodes: np.ndarray,
        ppn: np.ndarray,
        msize: np.ndarray,
    ) -> list[AlgorithmConfig | None]:
        """Rule bracket per query message size (allocation-independent).

        ``nodes``/``ppn`` are accepted for protocol symmetry with
        selector-backed models; a rules table is already specialised to
        one allocation, so only ``msize`` steers the lookup.
        """
        del nodes, ppn
        bounds = self.bracket_bounds
        idx = np.clip(
            np.searchsorted(bounds, np.asarray(msize, dtype=np.int64),
                            side="right") - 1,
            0,
            len(bounds) - 1,
        )
        return [self.configs[int(i)] for i in idx]

    def validate(self, library: MPILibrary) -> None:
        """Round-trip self-check: render -> strict validate -> re-parse.

        The registry runs this before every swap; a model that cannot
        reproduce a valid rules file must never go live.
        """
        text = self.rule_set.render(library)
        validate_rules(text, "ompi", self.collective)
        if RuleSet.parse(text) != self.rule_set:
            raise RulesResolutionError(
                "rules table does not survive a render/parse round trip"
            )
