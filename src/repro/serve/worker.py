"""One fleet worker: a :class:`PredictionService` behind stdio JSONL.

The front-end (:mod:`repro.serve.fleet`) spawns N of these as child
processes (``python -m repro.serve.worker --spec '<json>'``) and talks
line-delimited JSON over their stdin/stdout — the same request shapes
as the single-process loop (:mod:`repro.serve.loop`) plus the fleet
coordination ops:

* ``prepare_reload`` — parse/resolve/validate a rules file into a
  staged candidate (:meth:`~repro.serve.registry.ModelRegistry.stage_rules`),
  keyed by the front-end's reload token. Traffic keeps serving the old
  version; a validation failure answers ``ok: false`` and stages
  nothing.
* ``commit_reload`` — swap the staged candidate in
  (:meth:`~repro.serve.registry.ModelRegistry.commit`; cannot fail).
  The front-end only sends this once **every** worker has prepared and
  all in-flight requests have drained — the second half of the
  two-phase version barrier.
* ``abort_reload`` — drop a staged candidate (another worker failed to
  prepare).
* ``counters`` — this process's ``serve.*``/``bench.*`` counter
  snapshot, merged fleet-wide by the front-end for ``/metrics``.
* ``versions`` — the registry's live version number per collective
  (the fleet-chaos harness asserts these stay lockstep across
  respawns and reloads).
* ``drift`` — the feedback logger's drift-detector snapshot
  (per-(collective, version) residual stats + guideline violations),
  merged into labelled ``/metrics`` gauges by the front-end. Workers
  without feedback configured answer an empty snapshot.
* ``ping`` — liveness probe.
* ``chaos_garbage`` / ``chaos_crash`` — deterministic fault injection
  (:mod:`repro.serve.chaos`), only honoured when the worker spec sets
  ``chaos_ops``: emit an unparseable stdout line, or answer and then
  die mid-line. A production worker answers ``ok: false``.

Every request carries a front-end routing id (``rid``) that is echoed
verbatim on the response, so the front-end can pipeline requests and
match answers without per-request framing state. The worker itself is
deliberately single-threaded: fleet concurrency comes from running N
workers, and each worker's caches stay consistent without locks.

Protocol hygiene: stdout carries protocol lines *only* — everything
human-readable goes to stderr.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from typing import IO

from repro.machine.zoo import get_machine
from repro.mpilib import get_library
from repro.obs import get_telemetry
from repro.serve.loop import handle_request
from repro.serve.registry import ModelRegistry, ReloadError, StagedModel
from repro.serve.service import PredictionService

#: counter prefixes a worker reports to the fleet metrics merge
EXPORTED_COUNTER_PREFIXES = ("serve.", "bench.")


@dataclass
class WorkerState:
    """Everything one worker process serves from."""

    worker_id: int
    registry: ModelRegistry
    service: PredictionService
    #: reload token -> staged-but-not-committed candidate
    staged: dict[str, StagedModel] = field(default_factory=dict)
    #: honour chaos_garbage/chaos_crash fault-injection ops
    chaos_ops: bool = False


def build_state(spec: dict) -> WorkerState:
    """Construct the registry + service a worker spec describes.

    The spec is plain JSON (machine/library names, rules paths, service
    knobs) so the same models are rebuilt identically in every worker —
    model *objects* never cross the process boundary, which is what
    keeps workers restartable and the protocol text-only.
    """
    machine = get_machine(spec.get("machine", "Hydra"))
    library = get_library(spec.get("library", "Open MPI"))
    registry = ModelRegistry(machine, library)
    for path in spec.get("rules", ()):
        registry.load_rules(path)
    feedback = None
    if spec.get("feedback"):
        from repro.core.feedback import FeedbackConfig, FeedbackLogger

        feedback = FeedbackLogger(
            FeedbackConfig.from_spec(spec["feedback"]), machine, library
        )
    service = PredictionService(
        registry,
        mode=spec.get("mode", "exact"),
        cache_size=int(spec.get("cache_size", 4096)),
        compiled=bool(spec.get("compiled", True)),
        feedback=feedback,
    )
    return WorkerState(
        worker_id=int(spec.get("worker_id", 0)),
        registry=registry,
        service=service,
        chaos_ops=bool(spec.get("chaos_ops", False)),
    )


def handle_worker_request(state: WorkerState, payload: dict) -> dict:
    """One request -> one response; fleet ops first, then the loop ops."""
    op = payload.get("op", "recommend")
    if op == "prepare_reload":
        token = str(payload.get("token", ""))
        path = payload.get("path")
        try:
            if not path:
                raise ValueError("prepare_reload needs a 'path'")
            staged = state.registry.stage_rules(path)
        except (ValueError, ReloadError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        state.staged[token] = staged
        return {
            "ok": True,
            "token": token,
            "collective": str(staged.collective),
            "tag": staged.tag,
        }
    if op == "commit_reload":
        token = str(payload.get("token", ""))
        staged = state.staged.pop(token, None)
        if staged is None:
            return {
                "ok": False,
                "error": f"ValueError: no staged reload for token {token!r}",
            }
        version = state.registry.commit(staged)
        return {
            "ok": True,
            "token": token,
            "collective": str(version.collective),
            "version": version.version,
            "tag": version.tag,
        }
    if op == "abort_reload":
        token = str(payload.get("token", ""))
        return {"ok": True, "aborted": state.staged.pop(token, None) is not None}
    if op == "counters":
        counters = get_telemetry().counters_snapshot()
        return {
            "ok": True,
            "worker": state.worker_id,
            "counters": {
                name: value
                for name, value in counters.items()
                if name.startswith(EXPORTED_COUNTER_PREFIXES)
            },
        }
    if op == "versions":
        return {
            "ok": True,
            "worker": state.worker_id,
            "versions": state.registry.live_versions(),
        }
    if op == "drift":
        feedback = state.service.feedback
        drift = (
            feedback.detector.payload()
            if feedback is not None
            else {"stats": [], "violations": {}}
        )
        return {"ok": True, "worker": state.worker_id, "drift": drift}
    if op == "ping":
        return {"ok": True, "worker": state.worker_id, "pid": os.getpid()}
    return handle_request(state.service, payload)


def handle_chaos_op(state: WorkerState, payload: dict, out: IO[str]
                    ) -> dict | None:
    """Deterministic in-worker fault injection (chaos harness only).

    ``chaos_garbage`` writes a newline-terminated unparseable line to
    stdout — the front-end reader must skip it without losing rid sync
    — then answers normally. ``chaos_crash`` answers first (the
    injection is not allowed to be a client-visible failure), writes a
    *torn* line (no newline), and dies with ``os._exit`` so no atexit
    machinery can tidy the pipe. Returns the response to write, or
    ``None`` when the response was already written (crash path).
    """
    if not state.chaos_ops:
        op = payload.get("op")
        return {"ok": False, "error": f"ValueError: unknown op {op!r}"}
    if payload.get("op") == "chaos_garbage":
        out.write('#### chaos garbage: not json {"torn": \n')
        out.flush()
        return {"ok": True, "injected": "garbage", "worker": state.worker_id}
    response = {"ok": True, "injected": "crash", "worker": state.worker_id}
    rid = payload.get("rid")
    if rid is not None:
        response["rid"] = rid
    out.write(json.dumps(response) + "\n")
    out.flush()
    print(f"worker {state.worker_id}: chaos crash injected, exiting 23",
          file=sys.stderr, flush=True)
    out.write('{"torn": ')
    out.flush()
    os._exit(23)
    return None  # unreachable except under a stubbed os._exit (tests)


def serve_worker(state: WorkerState, lines, out: IO[str]) -> int:
    """The worker's request loop: JSONL in -> JSONL out, rid echoed.

    Mirrors :func:`repro.serve.loop.serve_lines` (bad lines answer
    ``ok: false`` and the loop keeps serving) with the fleet additions:
    a ``ready`` line is emitted before the first request so the
    front-end knows when models finished loading, and ``rid`` rides
    every response.
    """
    out.write(
        json.dumps(
            {"ok": True, "ready": True, "worker": state.worker_id,
             "pid": os.getpid()}
        )
        + "\n"
    )
    out.flush()
    served = 0
    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        rid = None
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            response = {"ok": False, "error": f"bad request line: {exc}"}
            payload = None
        else:
            rid = payload.get("rid")
            if str(payload.get("op", "")).startswith("chaos_"):
                response = handle_chaos_op(state, payload, out)
                if response is None:  # crash path answered for itself
                    served += 1
                    continue
            else:
                response = handle_worker_request(state, payload)
        if rid is not None:
            response["rid"] = rid
        out.write(json.dumps(response) + "\n")
        out.flush()
        served += 1
        if payload is not None and payload.get("op") == "quit":
            break
    return served


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.worker",
        description="fleet worker process (spawned by mpicollpred serve "
        "--workers N; not meant to be run by hand)",
    )
    parser.add_argument(
        "--spec", required=True,
        help="JSON worker spec: machine, library, rules, worker_id, "
        "mode, cache_size, compiled",
    )
    args = parser.parse_args(argv)
    try:
        spec = json.loads(args.spec)
        state = build_state(spec)
    except Exception as exc:  # surfaced as a protocol line, then die
        sys.stdout.write(
            json.dumps(
                {"ok": False, "ready": False,
                 "error": f"{type(exc).__name__}: {exc}"}
            )
            + "\n"
        )
        sys.stdout.flush()
        return 1
    served = serve_worker(state, sys.stdin, sys.stdout)
    print(f"worker {state.worker_id}: served {served} request(s)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
