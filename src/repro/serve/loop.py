"""JSONL request loop for ``mpicollpred serve``.

A line-oriented protocol made for scripting (pipe a file in, drive it
from a job prolog, or keep a long-lived co-process):

Request lines (JSON objects, one per line)::

    {"collective": "bcast", "nodes": 8, "ppn": 4, "msize": 65536}
    {"op": "recommend_many", "instances": [{"collective": "bcast", ...}]}
    {"op": "reload", "path": "new_rules.conf"}
    {"op": "stats"}
    {"op": "quit"}

Responses mirror requests one-for-one (same order), always carry
``"ok"``, and echo a request's ``"id"`` field when present. Malformed
input answers ``{"ok": false, "error": ...}`` and the loop keeps
serving — a bad client line must not take the service down.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro.serve.registry import ReloadError
from repro.serve.service import PredictionService
from repro.utils.units import parse_bytes


def _parse_instance(payload: dict) -> tuple[str, int, int, int]:
    try:
        collective = payload["collective"]
        nodes = int(payload["nodes"])
        ppn = int(payload["ppn"])
        msize = payload["msize"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(
            "instance needs collective, nodes, ppn, msize"
        ) from exc
    if isinstance(msize, str):
        msize = parse_bytes(msize)
    return collective, nodes, ppn, int(msize)


def handle_request(service: PredictionService, payload: dict) -> dict:
    """One request object -> one response object (never raises)."""
    request_id = payload.get("id")
    try:
        op = payload.get("op", "recommend")
        if op == "recommend":
            rec = service.recommend(*_parse_instance(payload))
            response = {"ok": True, **rec.to_dict()}
        elif op == "recommend_many":
            instances = payload.get("instances")
            if not isinstance(instances, list):
                raise ValueError("recommend_many needs an 'instances' list")
            recs = service.recommend_many(
                [_parse_instance(inst) for inst in instances]
            )
            response = {
                "ok": True,
                "results": [rec.to_dict() for rec in recs],
            }
        elif op == "reload":
            path = payload.get("path")
            if not path:
                raise ValueError("reload needs a 'path'")
            version = service.registry.load_rules(path)
            response = {
                "ok": True,
                "collective": str(version.collective),
                "version": version.version,
                "tag": version.tag,
            }
        elif op == "stats":
            response = {"ok": True, "stats": service.stats()}
        elif op == "quit":
            response = {"ok": True, "bye": True}
        else:
            raise ValueError(f"unknown op {op!r}")
    except (ValueError, KeyError, ReloadError) as exc:
        response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    if request_id is not None:
        response["id"] = request_id
    return response


def serve_lines(
    service: PredictionService, lines: Iterable[str], out: IO[str]
) -> int:
    """Drive the service from an iterable of JSONL lines.

    Returns the number of requests served. Stops early on
    ``{"op": "quit"}``; blank lines are skipped; responses are flushed
    per line so a co-process client never deadlocks on buffering.
    """
    served = 0
    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            response = {"ok": False, "error": f"bad request line: {exc}"}
            payload = None
        else:
            response = handle_request(service, payload)
        out.write(json.dumps(response) + "\n")
        out.flush()
        served += 1
        if payload is not None and payload.get("op") == "quit":
            break
    return served
