"""Versioned model registry with atomic hot-reload.

The registry is the serving layer's source of truth: per collective it
holds exactly one *live* :class:`ModelVersion`, and swaps are atomic —
a new rule set or selector is parsed, resolved against the library's
configuration space and round-trip **validated before the swap**; the
old version keeps serving until the new one passes, and a rejected
candidate leaves the live version untouched (``serve_reload`` event
with ``status="rejected"``). Readers never lock: they take one
reference to an immutable snapshot mapping, so a request observes
either the entire old registry state or the entire new one — never a
torn mixture (the concurrency tests hammer exactly this).

Graceful degradation mirrors :class:`repro.core.tuner.AutoTuner`: when
no live model covers an instance (or no model is published for the
collective at all), :meth:`ModelRegistry.default_config` answers with
the library's built-in decision logic — the floor that is always
available and always valid.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

import numpy as np

from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.core.selector import AlgorithmSelector
from repro.core.surface import DecisionSurface
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.mpilib.base import MPILibrary
from repro.obs import get_telemetry
from repro.serve.rules import RuleSet, RulesModel


class ReloadError(RuntimeError):
    """A candidate model failed validation and was not swapped in."""


@runtime_checkable
class ServableModel(Protocol):
    """What the registry serves: a batched instance -> config mapping."""

    @property
    def collective(self) -> CollectiveKind: ...

    @property
    def grid_axes(
        self,
    ) -> tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]: ...

    def select_configs(
        self, nodes: np.ndarray, ppn: np.ndarray, msize: np.ndarray
    ) -> list[AlgorithmConfig | None]: ...

    def describe(self) -> str: ...


@dataclass(frozen=True)
class SelectorModel:
    """A fitted :class:`~repro.core.selector.AlgorithmSelector` as a servable.

    ``grid_axes`` records the serving grid (normally the training
    grid): the surface shards of
    :class:`~repro.serve.service.PredictionService` materialise the
    selector's argmin over exactly these axes.
    """

    selector: AlgorithmSelector
    collective: CollectiveKind
    grid_axes: tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]

    def select_configs(
        self, nodes: np.ndarray, ppn: np.ndarray, msize: np.ndarray
    ) -> list[AlgorithmConfig | None]:
        return self.selector.select_many(nodes, ppn, msize)

    def build_surface(self) -> DecisionSurface:
        """Materialise the argmin shard over the serving grid (one batch)."""
        nodes, ppns, msizes = self.grid_axes
        return DecisionSurface.from_selector(
            self.selector, nodes, ppns, msizes
        )

    def describe(self) -> str:
        nodes, ppns, msizes = self.grid_axes
        return (
            f"selector[{self.collective}, {self.selector.num_models} models, "
            f"grid {len(nodes)}x{len(ppns)}x{len(msizes)}]"
        )


@dataclass(frozen=True)
class ModelVersion:
    """One immutable published model: what serves, and its lineage."""

    collective: CollectiveKind
    version: int
    tag: str
    source: str  #: "rules" | "selector"
    model: ServableModel


@dataclass(frozen=True)
class StagedModel:
    """A validated candidate that has *not* swapped in yet.

    The two-phase currency of coordinated reloads: the fleet's prepare
    phase calls :meth:`ModelRegistry.stage_rules` on every worker (full
    parse/resolve/validate, traffic still flowing on the old version),
    and only when **all** workers hold a staged candidate does the
    commit phase swap them in under the front-end's request barrier —
    :meth:`ModelRegistry.commit` cannot fail, so no worker can be left
    on a different version than its peers. Discarding a staged model
    (the abort path) is just dropping the reference.
    """

    collective: CollectiveKind
    tag: str
    source: str
    model: ServableModel


class ModelRegistry:
    """Per-(machine, library) registry of live models, one per collective."""

    def __init__(self, machine: MachineModel, library: MPILibrary) -> None:
        self.machine = machine
        self.library = library
        #: immutable snapshot swapped wholesale under _write_lock;
        #: readers take one reference and never lock
        self._live: dict[CollectiveKind, ModelVersion] = {}
        self._write_lock = threading.Lock()
        self._next_version = 1

    # -- read path -----------------------------------------------------
    def get(self, collective: CollectiveKind | str) -> ModelVersion | None:
        """The live version for ``collective`` (None = nothing published)."""
        # str-enum keys make the direct probe valid for both a
        # CollectiveKind and its value; the coercion (which costs more
        # than a whole compiled-table lookup) only runs on a miss
        live = self._live
        mv = live.get(collective)
        if mv is None:
            mv = live.get(CollectiveKind(collective))
        return mv

    def snapshot(self) -> dict[CollectiveKind, ModelVersion]:
        """A point-in-time view of every live model (already immutable)."""
        return dict(self._live)

    def collectives(self) -> list[CollectiveKind]:
        return sorted(self._live, key=str)

    def live_versions(self) -> dict[str, int]:
        """``{collective: live version number}`` — the lockstep fingerprint.

        Fleet peers must agree on this exactly: the chaos harness and
        the reload barrier compare it across workers (including freshly
        warm-restored ones) to prove no version skew.
        """
        return {
            str(collective): version.version
            for collective, version in sorted(
                self._live.items(), key=lambda item: str(item[0])
            )
        }

    def default_config(
        self, collective: CollectiveKind | str, nodes: int, ppn: int,
        msize: int,
    ) -> AlgorithmConfig:
        """The library's built-in decision logic — the degradation floor."""
        return self.library.default_config(
            self.machine, Topology(nodes, ppn), CollectiveKind(collective),
            msize,
        )

    # -- write path ----------------------------------------------------
    def stage(
        self, model: ServableModel, *, tag: str = "", source: str = "selector"
    ) -> StagedModel:
        """Validate ``model`` into a :class:`StagedModel` — no swap yet.

        The probe selection runs here, *before* any swap: a model that
        cannot answer for its own grid centre (or answers with a config
        outside the library's space) is rejected with
        :class:`ReloadError` and the live version is untouched.
        """
        telemetry = get_telemetry()
        collective = CollectiveKind(model.collective)
        try:
            self._validate(model, collective)
        except Exception as exc:
            telemetry.add("serve.reload_rejected")
            telemetry.event(
                "serve_reload", status="rejected", collective=str(collective),
                tag=tag, error=f"{type(exc).__name__}: {exc}",
            )
            raise ReloadError(
                f"candidate model for {collective} rejected: {exc}"
            ) from exc
        return StagedModel(
            collective=collective, tag=tag or model.describe(),
            source=source, model=model,
        )

    def commit(self, staged: StagedModel) -> ModelVersion:
        """Atomically make a staged candidate the live version.

        Pure swap — all validation already happened in :meth:`stage`,
        so this cannot raise: the property the fleet's commit barrier
        depends on (once every worker has staged, every worker *will*
        swap, and version numbers stay in lockstep).
        """
        telemetry = get_telemetry()
        with self._write_lock:
            previous = self._live.get(staged.collective)
            version = ModelVersion(
                collective=staged.collective,
                version=self._next_version,
                tag=staged.tag,
                source=staged.source,
                model=staged.model,
            )
            self._next_version += 1
            # wholesale replacement: readers holding the old dict keep a
            # fully consistent old view; new readers see the new one
            self._live = {**self._live, staged.collective: version}
        telemetry.add("serve.reloads")
        telemetry.event(
            "serve_reload", status="ok", collective=str(staged.collective),
            version=version.version, tag=version.tag, source=staged.source,
            replaces=previous.version if previous else None,
        )
        return version

    def publish(
        self, model: ServableModel, *, tag: str = "", source: str = "selector"
    ) -> ModelVersion:
        """Validate ``model`` and atomically make it the live version.

        One-shot :meth:`stage` + :meth:`commit` — the single-process
        reload path (the fleet splits the two phases across workers).
        """
        return self.commit(self.stage(model, tag=tag, source=source))

    def stage_rules(
        self, path: str | Path, *, tag: str | None = None
    ) -> StagedModel:
        """Parse, resolve and validate a rules file — no swap yet.

        Any failure — unreadable file, malformed table, rule outside the
        library's space, failed round trip — raises
        :class:`ReloadError` *without* touching the live version.
        """
        path = Path(path)
        try:
            rule_set = RuleSet.load(path)
            model = rule_set.resolve(self.library)
        except (OSError, ValueError) as exc:
            telemetry = get_telemetry()
            telemetry.add("serve.reload_rejected")
            telemetry.event(
                "serve_reload", status="rejected", tag=tag or path.name,
                error=f"{type(exc).__name__}: {exc}",
            )
            raise ReloadError(f"cannot load rules from {path}: {exc}") from exc
        return self.stage(model, tag=tag or path.name, source="rules")

    def load_rules(self, path: str | Path, *, tag: str | None = None) -> ModelVersion:
        """Parse, resolve and validate a rules file, then hot-swap it in."""
        return self.commit(self.stage_rules(path, tag=tag))

    # -- validation ----------------------------------------------------
    def _validate(
        self, model: ServableModel, collective: CollectiveKind
    ) -> None:
        if isinstance(model, RulesModel):
            model.validate(self.library)
            self._probe_compiled(model)
        nodes_axis, ppn_axis, msize_axis = model.grid_axes
        if not (nodes_axis and ppn_axis and msize_axis):
            raise ValueError("model has an empty serving grid")
        probe_n = nodes_axis[len(nodes_axis) // 2]
        probe_p = ppn_axis[len(ppn_axis) // 2]
        probe_m = msize_axis[len(msize_axis) // 2]
        picks = model.select_configs(
            np.asarray([probe_n]), np.asarray([probe_p]),
            np.asarray([probe_m]),
        )
        if len(picks) != 1:
            raise ValueError(
                f"probe selection returned {len(picks)} results for 1 query"
            )
        space = set(self.library.config_space(collective).configs)
        for config in picks:
            if config is not None and config not in space:
                raise ValueError(
                    f"probe selected {config.label} which is outside "
                    f"{self.library.name}'s {collective} space"
                )

    def _probe_compiled(self, model: "RulesModel") -> None:
        """Compiled/interpreted agreement probe, run before the swap.

        The L0 decision-table lowering of a rules model is cheap enough
        to build eagerly, so every rule boundary (and its neighbours,
        where bracket-edge bugs live) is cross-checked against the
        interpreted lookup here — a mis-lowered table is rejected at
        publish time instead of serving wrong configs sub-microsecond
        fast. Selector-backed models skip this: their lowering needs a
        full surface sweep and is pinned by the property suite instead.
        """
        from repro.serve.compiled import compile_servable  # cycle guard

        table = compile_servable(model, version=0)
        if table is None:
            return
        probes: list[int] = []
        for m in model.bracket_bounds.tolist():
            probes.extend((max(m - 1, 0), m, m + 1))
        probes.append(min(int(model.bracket_bounds[-1]) * 2 + 7, 1 << 62))
        want = model.select_configs(
            None, None, np.asarray(probes, dtype=np.int64)
        )
        for msize, expected in zip(probes, want, strict=True):
            cid = table.lookup(0, 0, msize)
            if cid >= 0 and table.configs[cid] != expected:
                raise ValueError(
                    f"compiled table disagrees with the rules bracket at "
                    f"msize={msize}"
                )
