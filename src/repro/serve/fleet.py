"""Multi-worker serving fleet: asyncio front-end over worker processes.

``mpicollpred serve --workers N --port P`` turns the single-process
:class:`~repro.serve.service.PredictionService` into an operating
fleet:

* **N worker processes** (:mod:`repro.serve.worker`), each holding its
  own registry + service (compiled L0 tables and L1 LRU intact),
  spawned as subprocesses and spoken to over stdio JSONL with
  pipelined, ``rid``-matched requests.
* **Consistent-hash routing** on ``(collective, nodes, ppn)``
  (:class:`HashRing`): the same allocation always lands on the same
  worker, so each worker's caches and surface shards stay hot instead
  of every worker cold-missing the whole key space. ``recommend_many``
  batches split into per-worker sub-batches that run concurrently.
* **Self-healing** (:class:`FleetSupervisor`): a dead worker (pipe
  EOF, response-pipe overflow, call timeout, process exit) is
  respawned with exponential backoff and **warm-restored** — every
  reload committed since boot is replayed through the normal
  ``prepare``/``commit`` path before the worker rejoins the ring, so a
  respawned worker never serves a stale registry or skews version
  numbers. A per-worker circuit breaker (more than
  ``max_worker_restarts`` crashes inside ``restart_window_s``) holds a
  crash-looping worker open instead of thrashing.
* **Failover routing & bounded retry**: while a worker is down its
  keys route to the next live owner on the hash ring (deterministic —
  keys return to the original owner after respawn), and a request that
  dies with its worker is retried once on the failover owner instead
  of surfacing :class:`WorkerError` to the client.
* **Backpressure**: each worker has a bounded in-flight queue
  (``queue_depth``); beyond the high-water mark the front-end answers
  ``ok: false, error: "overloaded"`` (HTTP 503 on the scrape paths
  that fan out to workers) instead of queueing unboundedly
  (``fleet.shed`` counter, per-worker ``fleet_queue_depth`` gauges).
* **One listening socket, two protocols**: a connection that opens
  with an HTTP verb gets the scrape surface (``GET /metrics``
  Prometheus text, ``GET /healthz`` — ``ok``/``degraded``/``down``
  with 503 when no live worker owns the ring — ``GET /stats``);
  anything else is the line-oriented JSONL protocol of
  :mod:`repro.serve.loop`.
* **Coordinated hot reload** — a two-phase version barrier
  (:meth:`Fleet._handle_reload`): phase one stages the candidate on
  every *live* worker while traffic still flows (a live worker that
  rejects it aborts the whole reload; a worker that dies mid-phase is
  simply excluded — its replacement warm-restores to whatever the
  reload decides); phase two closes the request gate, waits for
  in-flight requests to drain, commits every staged worker, and
  reopens. Queued requests are *delayed, never dropped*, and no
  response can mix versions.
* **Metrics export**: per-request latency lands in a
  :class:`repro.obs.Histogram`; a scrape merges ``serve.*`` counters
  across workers and renders everything with
  :func:`repro.serve.exporter.render_prometheus`.

Deterministic fault injection for all of the above lives in
:mod:`repro.serve.chaos` (seeded kill/wedge/garbage/crash plans) and is
reachable over the socket via the ``chaos`` op when the fleet is booted
with ``chaos_ops=True`` (``--chaos-ops``) — disabled by default.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import hashlib
import itertools
import json
import os
import signal
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.obs import get_telemetry
from repro.serve.exporter import render_prometheus

#: how many points each worker contributes to the hash ring — enough
#: that removing a worker moves ~1/N of the key space, not half of it
VNODES_PER_WORKER = 64

#: asyncio StreamReader line limit for worker pipes *and* client
#: connections — the default 64 KiB truncates a few-hundred-instance
#: ``recommend_many`` response, and an overflowing readline() raises
#: ValueError, not a short read
STREAM_LIMIT = 16 * 1024 * 1024

#: per-request deadline on a worker call — a wedged-but-alive worker
#: must fail the request (and be killed) rather than hold the reload
#: gate open forever
CALL_TIMEOUT_S = 60.0

#: trailing stderr lines of a worker kept in its quarantine buffer and
#: surfaced in the ``fleet_worker_died`` event when it crashes
STDERR_TAIL_LINES = 20

#: how often the supervisor rescans worker liveness when nothing kicks
#: it awake (deaths kick it immediately via ``WorkerHandle.on_death``)
SUPERVISOR_POLL_S = 0.5

#: ceiling on the supervisor's exponential respawn backoff
BACKOFF_CAP_S = 5.0

#: how long Fleet.stop() waits for in-flight requests to drain before
#: tearing the workers down anyway
DRAIN_TIMEOUT_S = 5.0

#: fleet-side latency buckets (microseconds): routed requests cross two
#: pipe hops, so the floor sits around tens of microseconds
LATENCY_BUCKETS_US = (
    50.0, 100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0,
    20_000.0, 50_000.0, 100_000.0, 200_000.0, 500_000.0, 1_000_000.0,
    5_000_000.0,
)

HELP_TEXTS = {
    "fleet.request_latency_us": "front-end request latency in microseconds",
    "fleet.reload_pause_us": "request-gate pause during reload commits (us)",
    "fleet.requests": "requests handled by the fleet front-end",
    "fleet.reloads": "coordinated reloads committed across all workers",
    "fleet.reload_rejected": "reloads aborted in the prepare phase",
    "fleet.worker_failures": "requests failed because no live worker could answer",
    "fleet.failover_retries": "requests retried on a failover ring owner",
    "fleet.shed": "requests shed because a worker queue hit its high-water mark",
    "fleet.worker_restarts": "dead workers respawned and warm-restored",
    "fleet.breaker_open": "per-worker circuit breakers opened on crash loops",
    "fleet.worker_garbage_lines": "unparseable worker stdout lines skipped",
    "fleet.queue_depth": "in-flight requests per worker",
    "fleet.workers_alive": "workers currently alive",
    "fleet.breakers_open": "workers currently held open by their breaker",
    "serve.compiled.hit": "requests answered by the compiled L0 table",
    "serve.l1.hits": "requests answered by the L1 recommendation LRU",
    "serve.requests": "recommend requests across all workers",
    "serve.feedback.rows": "feedback rows appended by the serve loop",
    "serve.feedback.skipped_lines": "torn/garbage feedback lines skipped",
    "serve.feedback.guideline_violations":
        "performance-guideline violations seen at served instances",
    "serve.drift.residual_median":
        "median log(observed/predicted) residual per (collective, version)",
    "serve.drift.residual_mad":
        "normalised MAD of the residual window per (collective, version)",
    "serve.drift.samples": "residual window size per (collective, version)",
}


class WorkerError(RuntimeError):
    """A worker process died or answered garbage."""


class OverloadedError(RuntimeError):
    """A worker's in-flight queue is past the high-water mark."""


@dataclass(frozen=True)
class FleetSpec:
    """Everything needed to boot a fleet (JSON-safe, worker-shippable)."""

    machine: str = "Hydra"
    library: str = "Open MPI"
    rules: tuple[str, ...] = ()
    workers: int = 2
    mode: str = "exact"
    cache_size: int = 4096
    compiled: bool = True
    #: per-worker in-flight high-water mark; beyond it requests are
    #: shed with ``ok: false, error: "overloaded"`` instead of queueing
    queue_depth: int = 128
    #: crashes per worker inside ``restart_window_s`` before its
    #: circuit breaker holds it open (no further respawns)
    max_worker_restarts: int = 5
    restart_window_s: float = 30.0
    #: first respawn delay; doubles per crash in the window (cap 5 s)
    backoff_base_s: float = 0.25
    #: per-request worker deadline — a wedged worker is killed and
    #: respawned when a call exceeds it
    call_timeout_s: float = CALL_TIMEOUT_S
    #: admit deterministic fault-injection ops (kill/wedge/garbage/
    #: crash) over the socket — chaos harness only, default off
    chaos_ops: bool = False
    #: directory for per-worker feedback JSONL logs ("" disables the
    #: closed loop); each worker appends to feedback-w<id>.jsonl
    feedback_dir: str = ""
    #: seed of the simulated observation RNG (pure function of the
    #: site, so respawned workers replay identical rows)
    feedback_seed: int = 0
    #: injected world shift for drift drills: observed times of the
    #: listed algids (all when empty) are scaled by this factor
    feedback_shift: float = 1.0
    feedback_shift_algids: tuple[int, ...] = ()

    def worker_spec(self, worker_id: int) -> dict:
        spec = {
            "worker_id": worker_id,
            "machine": self.machine,
            "library": self.library,
            "rules": list(self.rules),
            "mode": self.mode,
            "cache_size": self.cache_size,
            "compiled": self.compiled,
            "chaos_ops": self.chaos_ops,
        }
        if self.feedback_dir:
            path = Path(self.feedback_dir) / f"feedback-w{worker_id}.jsonl"
            spec["feedback"] = {
                "path": str(path),
                "seed": self.feedback_seed,
                "shift": self.feedback_shift,
                "shift_algids": list(self.feedback_shift_algids),
            }
        return spec


def _stable_hash(text: str) -> int:
    """64-bit hash that is identical across processes and runs.

    (Python's builtin ``hash`` is salted per process — useless for
    routing decisions that tests and restarted front-ends must agree
    on.)
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing of routing keys onto worker indices."""

    def __init__(self, n_workers: int, vnodes: int = VNODES_PER_WORKER) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        points = sorted(
            (_stable_hash(f"worker-{worker}/vnode-{vnode}"), worker)
            for worker in range(n_workers)
            for vnode in range(vnodes)
        )
        self.n_workers = n_workers
        self._hashes = [point for point, _ in points]
        self._owners = [worker for _, worker in points]

    @staticmethod
    def route_key(collective: str, nodes: int, ppn: int) -> str:
        """The routing identity: message size deliberately excluded,
        so one allocation's whole msize sweep shares one worker's
        compiled table and LRU."""
        return f"{collective}|{nodes}|{ppn}"

    def owners_for(self, collective: str, nodes: int, ppn: int) -> tuple[int, ...]:
        """Every worker in ring order starting at the key's point.

        The first element is the key's home owner; the rest is the
        deterministic failover chain — while the home owner is down its
        keys belong to the next *live* entry, and they return home the
        moment it is respawned (the chain is a pure function of the
        ring, not of liveness history).
        """
        point = _stable_hash(self.route_key(collective, nodes, ppn))
        start = bisect.bisect_right(self._hashes, point)
        size = len(self._hashes)
        seen: set[int] = set()
        chain: list[int] = []
        for step in range(size):
            owner = self._owners[(start + step) % size]
            if owner not in seen:
                seen.add(owner)
                chain.append(owner)
                if len(chain) == self.n_workers:
                    break
        return tuple(chain)

    def worker_for(
        self, collective: str, nodes: int, ppn: int,
        alive: Iterable[int] | None = None,
    ) -> int:
        """The key's owner; with ``alive`` given, its first live owner."""
        chain = self.owners_for(collective, nodes, ppn)
        if alive is None:
            return chain[0]
        live = set(alive)
        for owner in chain:
            if owner in live:
                return owner
        raise WorkerError("no live worker owns the ring")


class _ReloadGate:
    """Requests are readers, a reload commit is the (sole) writer.

    ``close()`` stops admitting new requests and waits for in-flight
    ones to drain; ``open()`` releases the queue. Requests arriving
    while closed *wait* — nothing is ever rejected, which is the "zero
    dropped responses" half of the reload contract. Single event loop,
    so counter updates need no lock.
    """

    def __init__(self) -> None:
        self.inflight = 0
        self._admitting = asyncio.Event()
        self._admitting.set()
        self._drained = asyncio.Event()
        self._drained.set()

    async def acquire(self) -> None:
        while not self._admitting.is_set():
            await self._admitting.wait()
        self.inflight += 1

    def release(self) -> None:
        self.inflight -= 1
        if self.inflight == 0:
            self._drained.set()

    async def close(self) -> None:
        self._admitting.clear()
        if self.inflight:
            self._drained.clear()
            await self._drained.wait()

    def open(self) -> None:
        self._admitting.set()


class WorkerHandle:
    """One worker subprocess: pipelined rid-matched request/response."""

    def __init__(self, worker_id: int,
                 process: asyncio.subprocess.Process,
                 on_death: Callable[[], None] | None = None) -> None:
        self.worker_id = worker_id
        self.process = process
        self._rids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._reader: asyncio.Task | None = None
        self._stderr_task: asyncio.Task | None = None
        self._write_lock = asyncio.Lock()
        self.dead_reason: str | None = None
        self.ready_info: dict = {}
        #: quarantined trailing stderr of the worker — surfaced in the
        #: fleet_worker_died event instead of being lost with the crash
        self.stderr_tail: deque[str] = deque(maxlen=STDERR_TAIL_LINES)
        self._on_death = on_death

    @property
    def alive(self) -> bool:
        return self.dead_reason is None and self.process.returncode is None

    @property
    def inflight(self) -> int:
        """Requests sent but not yet answered (the bounded queue)."""
        return len(self._pending)

    async def start(self, timeout: float = 30.0) -> None:
        """Wait for the worker's ready line, then start the dispatcher."""
        if self.process.stderr is not None:
            self._stderr_task = asyncio.create_task(self._drain_stderr())
        stdout = self.process.stdout
        assert stdout is not None  # PIPE-spawned (see _spawn_worker)
        line = await asyncio.wait_for(stdout.readline(), timeout)
        info = json.loads(line) if line else {}
        if not info.get("ready"):
            raise WorkerError(
                f"worker {self.worker_id} failed to start: "
                f"{info.get('error', 'no ready line')}"
            )
        self.ready_info = info
        self._reader = asyncio.create_task(self._read_loop())

    async def _drain_stderr(self) -> None:
        """Quarantine + forward worker stderr line by line.

        The tail survives the process so a crash's last words end up in
        the ``fleet_worker_died`` event; the live stream is forwarded to
        the front-end's stderr (prefixed) so operators still see it.
        """
        stream = self.process.stderr
        assert stream is not None  # PIPE-spawned (see _spawn_worker)
        while True:
            try:
                line = await stream.readline()
            except ValueError:
                self.stderr_tail.append("<oversized stderr line dropped>")
                break
            if not line:
                return
            text = line.decode("utf-8", "replace").rstrip()
            self.stderr_tail.append(text)
            print(f"[worker {self.worker_id}] {text}",
                  file=sys.stderr, flush=True)

    async def _read_loop(self) -> None:
        reason = "died"
        stdout = self.process.stdout
        assert stdout is not None  # PIPE-spawned (see _spawn_worker)
        try:
            while True:
                try:
                    line = await stdout.readline()
                except ValueError:
                    # response line over STREAM_LIMIT: the stream has
                    # discarded it, so some rid can never be matched
                    # again — the pipe protocol is broken, fail the
                    # worker rather than hang its callers
                    reason = "overflowed its response pipe"
                    break
                if not line:
                    break
                try:
                    response = json.loads(line)
                except ValueError:
                    # a torn/garbage line cannot be matched to a caller;
                    # skip it — the caller's deadline (or the worker's
                    # death) resolves the orphaned rid
                    get_telemetry().add("fleet.worker_garbage_lines")
                    continue
                future = self._pending.pop(response.pop("rid", None), None)
                if future is not None and not future.done():
                    future.set_result(response)
        finally:
            # EOF, overflow, or reader cancellation: nothing further
            # will arrive — fail in-flight callers and refuse new ones
            self._fail(reason)

    def _fail(self, reason: str) -> None:
        """Mark this worker unusable: fail pending + future callers."""
        if self.dead_reason is None:
            self.dead_reason = reason
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    WorkerError(f"worker {self.worker_id} {reason}")
                )
        self._pending.clear()
        if self.process.returncode is None:
            with contextlib.suppress(ProcessLookupError):
                self.process.kill()
        if self._on_death is not None:
            with contextlib.suppress(Exception):
                self._on_death()

    async def call(self, payload: dict,
                   timeout: float = CALL_TIMEOUT_S) -> dict:
        """Send one request; resolves when its rid-matched answer lands."""
        if self.dead_reason is not None:
            raise WorkerError(
                f"worker {self.worker_id} {self.dead_reason}"
            )
        if self.process.returncode is not None:
            raise WorkerError(f"worker {self.worker_id} is not running")
        rid = next(self._rids)
        future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        data = json.dumps({**payload, "rid": rid}) + "\n"
        try:
            # one writer at a time: concurrent drain() on the same
            # transport is not supported by asyncio (bpo-29930)
            async with self._write_lock:
                stdin = self.process.stdin
                assert stdin is not None  # PIPE-spawned
                stdin.write(data.encode("utf-8"))
                await stdin.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError) as exc:
            self._pending.pop(rid, None)
            self._fail("died (stdin closed)")
            raise WorkerError(f"worker {self.worker_id} died") from exc
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(rid, None)
            # a wedged worker must not wedge the fleet: kill it so the
            # reload gate can drain and callers get a clean error
            self._fail(f"timed out after {timeout:.0f}s")
            raise WorkerError(
                f"worker {self.worker_id} timed out after {timeout:.0f}s"
            ) from None

    async def stop(self, timeout: float = 5.0) -> None:
        # quit-then-reap order matters: cancelling the reader first
        # would run _fail() and kill the process before the graceful
        # quit; instead the quit's EOF lets the reader exit on its own
        if self.process.returncode is None and self.dead_reason is None:
            with contextlib.suppress(
                ConnectionResetError, BrokenPipeError, RuntimeError
            ):
                async with self._write_lock:
                    stdin = self.process.stdin
                    assert stdin is not None  # PIPE-spawned
                    stdin.write(b'{"op": "quit"}\n')
                    await stdin.drain()
                    stdin.close()
            try:
                await asyncio.wait_for(self.process.wait(), timeout)
            except asyncio.TimeoutError:
                self.process.kill()
                await self.process.wait()
        elif self.process.returncode is None:
            self.process.kill()
            await self.process.wait()
        for task in (self._reader, self._stderr_task):
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task


def _worker_env() -> dict[str, str]:
    """Child env whose PYTHONPATH can import this very repro package."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            f"{src_root}{os.pathsep}{existing}" if existing else src_root
        )
    return env


@dataclass
class _FleetStats:
    connections: int = 0
    served: int = 0
    # monotonic, not wall clock: uptime is an interval and must not jump
    # under NTP adjustments (and REP001 bans time.time on serve paths)
    started_at: float = field(default_factory=time.monotonic)


class FleetSupervisor:
    """Watches worker liveness; respawns, warm-restores, opens breakers.

    Deaths kick the watch loop awake immediately (``kick``); a slow
    poll catches anything the kick missed. Each dead slot gets its own
    respawn task: emit the ``fleet_worker_died`` event (with the
    quarantined stderr tail), reap the corpse, back off exponentially
    on repeated crashes, spawn a replacement, **warm-restore** it (every
    committed reload replayed through prepare/commit under the reload
    lock, so it cannot race a concurrent reload), and only then install
    it back into the routing table. More than
    ``spec.max_worker_restarts`` crashes inside ``spec.restart_window_s``
    open the slot's circuit breaker: the worker is held open (no more
    respawns, ``fleet.breaker_open``) and the fleet keeps serving
    degraded on the survivors.
    """

    def __init__(self, fleet: "Fleet") -> None:
        self.fleet = fleet
        self.kick = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._restarting: set[int] = set()
        self._breakers: set[int] = set()
        self._crashes: dict[int, list[float]] = {}
        self._respawns: dict[int, asyncio.Task] = {}

    # -- state the health surface reports --------------------------------
    def restarting_ids(self) -> list[int]:
        return sorted(self._restarting)

    def breaker_ids(self) -> list[int]:
        return sorted(self._breakers)

    def start(self) -> None:
        self._task = asyncio.create_task(self._watch())

    async def stop(self) -> None:
        tasks = [self._task, *self._respawns.values()]
        self._task = None
        self._respawns = {}
        for task in tasks:
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task

    async def _watch(self) -> None:
        while not self.fleet._stopping:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self.kick.wait(), SUPERVISOR_POLL_S)
            self.kick.clear()
            if self.fleet._stopping:
                return
            for slot, handle in enumerate(self.fleet.workers):
                if (
                    handle.alive
                    or slot in self._restarting
                    or slot in self._breakers
                ):
                    continue
                self._restarting.add(slot)
                self._respawns[slot] = asyncio.create_task(
                    self._respawn(slot, handle)
                )

    def _note_crash(self, slot: int) -> bool:
        """Record a crash; True when the breaker must open."""
        now = time.monotonic()
        window = self.fleet.spec.restart_window_s
        crashes = self._crashes.setdefault(slot, [])
        crashes.append(now)
        while crashes and now - crashes[0] > window:
            crashes.pop(0)
        return len(crashes) > self.fleet.spec.max_worker_restarts

    async def _respawn(self, slot: int, dead: WorkerHandle) -> None:
        fleet = self.fleet
        telemetry = get_telemetry()
        telemetry.event(
            "fleet_worker_died", worker=slot,
            reason=dead.dead_reason
            or f"exited with code {dead.process.returncode}",
            stderr_tail=list(dead.stderr_tail),
        )
        with contextlib.suppress(ProcessLookupError):
            dead.process.kill()
        with contextlib.suppress(Exception):
            await dead.process.wait()
        try:
            while not fleet._stopping:
                if self._note_crash(slot):
                    self._breakers.add(slot)
                    telemetry.add("fleet.breaker_open")
                    telemetry.event(
                        "fleet_breaker_open", worker=slot,
                        crashes_in_window=len(self._crashes[slot]),
                        window_s=fleet.spec.restart_window_s,
                    )
                    return
                attempts = len(self._crashes[slot])
                delay = min(
                    fleet.spec.backoff_base_s * (2 ** max(attempts - 1, 0)),
                    BACKOFF_CAP_S,
                )
                await asyncio.sleep(delay)
                if fleet._stopping:
                    return
                handle: WorkerHandle | None = None
                try:
                    handle = await fleet._spawn_handle(slot)
                    # warm-restore under the reload lock: no reload can
                    # land between the replay and the install, so the
                    # rejoined worker can never be version-skewed
                    async with fleet._reload_lock:
                        await fleet._warm_restore(handle)
                        fleet.workers[slot] = handle
                except Exception as exc:
                    if handle is not None:
                        handle._fail("failed warm restore")
                        with contextlib.suppress(Exception):
                            await handle.process.wait()
                    telemetry.event(
                        "fleet_worker_respawn_failed", worker=slot,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    continue
                telemetry.add("fleet.worker_restarts")
                telemetry.event(
                    "fleet_worker_respawned", worker=slot,
                    pid=handle.process.pid,
                    restored_reloads=len(fleet._committed),
                )
                return
        finally:
            self._restarting.discard(slot)
            self._respawns.pop(slot, None)


class Fleet:
    """The front-end: socket server + worker pool + reload coordinator."""

    def __init__(self, spec: FleetSpec, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        if spec.workers < 1:
            raise ValueError("a fleet needs at least one worker")
        self.spec = spec
        self.host = host
        self.port = port  # 0 = ephemeral; rewritten by start()
        self.workers: list[WorkerHandle] = []
        self.ring = HashRing(spec.workers)
        self.supervisor: FleetSupervisor | None = None
        self._gate = _ReloadGate()
        self._reload_lock: asyncio.Lock | None = None
        self._reload_tokens = itertools.count(1)
        self._restore_tokens = itertools.count(1)
        self._server: asyncio.AbstractServer | None = None
        self._stats = _FleetStats()
        #: rules paths committed by coordinated reloads since boot, in
        #: order — the warm-restore replay script for respawned workers
        self._committed: list[str] = []
        self._connections: set[asyncio.Task] = set()
        self._stopping = False
        self._stopped = False

    # -- lifecycle -------------------------------------------------------
    async def _make_handle(self, worker_id: int) -> WorkerHandle:
        process = await asyncio.create_subprocess_exec(
            sys.executable, "-m", "repro.serve.worker",
            "--spec", json.dumps(self.spec.worker_spec(worker_id)),
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.PIPE,
            env=_worker_env(),
            limit=STREAM_LIMIT,
        )
        return WorkerHandle(worker_id, process, on_death=self._kick_supervisor)

    async def _spawn_handle(self, worker_id: int) -> WorkerHandle:
        """Spawn + await readiness, reaping the process on failure."""
        handle = await self._make_handle(worker_id)
        try:
            await handle.start()
        except BaseException:
            with contextlib.suppress(ProcessLookupError):
                handle.process.kill()
            with contextlib.suppress(Exception):
                await handle.process.wait()
            raise
        return handle

    def _kick_supervisor(self) -> None:
        if self.supervisor is not None:
            self.supervisor.kick.set()

    async def start(self) -> None:
        self._reload_lock = asyncio.Lock()
        self.supervisor = FleetSupervisor(self)
        for worker_id in range(self.spec.workers):
            self.workers.append(await self._make_handle(worker_id))
        await asyncio.gather(*(worker.start() for worker in self.workers))
        self.supervisor.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, limit=STREAM_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]
        telemetry = get_telemetry()
        telemetry.gauge("fleet.workers", len(self.workers))
        # pre-create the latency histogram so an early scrape sees it
        telemetry.histogram("fleet.request_latency_us", LATENCY_BUCKETS_US)
        print(
            f"fleet: listening on {self.host}:{self.port} "
            f"({len(self.workers)} workers)",
            file=sys.stderr, flush=True,
        )

    async def stop(self) -> None:
        """Idempotent teardown: safe twice, safe mid-startup, safe with
        already-reaped workers.

        Order: stop supervising (no respawns during teardown), stop
        accepting connections, give in-flight requests a bounded window
        to drain, then quit/reap the workers.
        """
        if self._stopped:
            return
        self._stopped = True
        self._stopping = True
        if self.supervisor is not None:
            await self.supervisor.stop()
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        if self._gate.inflight:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._gate.close(), DRAIN_TIMEOUT_S)
            self._gate.open()
        # lingering connections (idle clients) would outlive the loop
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        await asyncio.gather(
            *(worker.stop() for worker in self.workers),
            return_exceptions=True,
        )

    # -- connection handling --------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._stats.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            try:
                first = await reader.readline()
            except ValueError:
                await self._reject_oversized(writer)
                return
            if not first:
                return
            if first.split(b" ", 1)[0] in (b"GET", b"POST", b"HEAD"):
                await self._handle_http(first, reader, writer)
                return
            await self._handle_jsonl(first, reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to answer
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _reject_oversized(self, writer: asyncio.StreamWriter) -> None:
        """A request line over STREAM_LIMIT still gets *a* response.

        The stream has discarded the oversized line, so byte positions
        after it are mid-line garbage — answer the error, then the
        caller closes the connection (it cannot be re-synchronised).
        """
        get_telemetry().add("fleet.bad_lines")
        writer.write((json.dumps({
            "ok": False,
            "error": "ValueError: request line exceeds "
            f"{STREAM_LIMIT} bytes",
        }) + "\n").encode("utf-8"))
        await writer.drain()

    async def _handle_jsonl(
        self, first: bytes, reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """The JSONL protocol of :mod:`repro.serve.loop`, fleet-routed."""
        line = first
        while line:
            stripped = line.strip()
            if stripped:
                response, is_quit = await self._serve_line(stripped)
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
                if is_quit:
                    return
            try:
                line = await reader.readline()
            except ValueError:
                await self._reject_oversized(writer)
                return
    async def _serve_line(self, raw: bytes) -> tuple[dict, bool]:
        telemetry = get_telemetry()
        telemetry.add("fleet.requests")
        t0 = time.perf_counter()
        request_id = None
        is_quit = False
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            telemetry.add("fleet.bad_lines")
            return {"ok": False, "error": f"bad request line: {exc}"}, False
        request_id = payload.get("id")
        op = payload.get("op", "recommend")
        try:
            if op in ("recommend", "recommend_many"):
                await self._gate.acquire()
                try:
                    response = await self._route(op, payload)
                finally:
                    self._gate.release()
            elif op == "reload":
                response = await self._handle_reload(payload)
            elif op == "stats":
                response = await self._handle_stats()
            elif op == "chaos":
                response = await self._handle_chaos(payload)
            elif op == "quit":
                response, is_quit = {"ok": True, "bye": True}, True
            else:
                response = {
                    "ok": False, "error": f"ValueError: unknown op {op!r}",
                }
        except OverloadedError:
            response = {"ok": False, "error": "overloaded"}
        except WorkerError as exc:
            telemetry.add("fleet.worker_failures")
            response = {"ok": False, "error": f"WorkerError: {exc}"}
        if request_id is not None:
            response["id"] = request_id
        self._stats.served += 1
        telemetry.observe(
            "fleet.request_latency_us",
            (time.perf_counter() - t0) * 1e6,
        )
        return response, is_quit

    # -- request routing -------------------------------------------------
    def _owners_of(self, instance: dict) -> tuple[int, ...]:
        try:
            return self.ring.owners_for(
                str(instance.get("collective")),
                int(instance.get("nodes", 0)),
                int(instance.get("ppn", 0)),
            )
        except (TypeError, ValueError):
            # malformed: any worker can render the error
            return tuple(range(len(self.workers)))

    def _admit(self, handle: WorkerHandle) -> None:
        """Backpressure: shed instead of queueing past the high-water
        mark — an overloaded worker answers *some* requests fast rather
        than all requests late."""
        if handle.inflight >= self.spec.queue_depth:
            get_telemetry().add("fleet.shed")
            raise OverloadedError(
                f"worker {handle.worker_id} at queue depth "
                f"{handle.inflight} >= {self.spec.queue_depth}"
            )

    async def _call_with_failover(
        self, owners: tuple[int, ...], payload: dict
    ) -> dict:
        """One request against its owner chain: primary, then one retry
        on the next live owner if the primary dies mid-call."""
        telemetry = get_telemetry()
        tried: set[int] = set()
        last: WorkerError | None = None
        for attempt in range(2):
            handle = next(
                (
                    self.workers[owner] for owner in owners
                    if self.workers[owner].alive and owner not in tried
                ),
                None,
            )
            if handle is None:
                break
            tried.add(handle.worker_id)
            if attempt:
                telemetry.add("fleet.failover_retries")
            self._admit(handle)
            try:
                return await handle.call(
                    payload, timeout=self.spec.call_timeout_s
                )
            except WorkerError as exc:
                last = exc
        raise last or WorkerError("no live worker owns the ring")

    async def _route(self, op: str, payload: dict) -> dict:
        payload = {k: v for k, v in payload.items() if k != "id"}
        if op == "recommend":
            return await self._call_with_failover(
                self._owners_of(payload), payload
            )
        instances = payload.get("instances")
        if not isinstance(instances, list):
            return {
                "ok": False,
                "error": "ValueError: recommend_many needs an "
                "'instances' list",
            }
        results: list = [None] * len(instances)
        error = await self._scatter(
            instances, list(range(len(instances))), results, retry=True
        )
        if error is not None:
            return error
        return {"ok": True, "results": results}

    async def _scatter(
        self, instances: list, positions: list[int], results: list,
        retry: bool,
    ) -> dict | None:
        """Fan sub-batches to their live owners; fill ``results`` in
        input order. Sub-batches whose worker dies mid-call regroup by
        the new live owners and retry once. Returns the first error
        response (verbatim), or None on success."""
        groups: dict[int, list[int]] = {}
        for position in positions:
            instance = instances[position]
            owners = (
                self._owners_of(instance)
                if isinstance(instance, dict)
                else tuple(range(len(self.workers)))
            )
            target = next(
                (o for o in owners if self.workers[o].alive), None
            )
            if target is None:
                raise WorkerError("no live worker owns the ring")
            groups.setdefault(target, []).append(position)
        ordered = sorted(groups.items())
        for target, _ in ordered:
            self._admit(self.workers[target])
        outcomes = await asyncio.gather(
            *(
                self.workers[target].call(
                    {
                        "op": "recommend_many",
                        "instances": [instances[p] for p in subset],
                    },
                    timeout=self.spec.call_timeout_s,
                )
                for target, subset in ordered
            ),
            return_exceptions=True,
        )
        for (_target, subset), outcome in zip(ordered, outcomes, strict=True):
            if isinstance(outcome, WorkerError):
                if not retry:
                    raise outcome
                get_telemetry().add("fleet.failover_retries")
                error = await self._scatter(
                    instances, subset, results, retry=False
                )
                if error is not None:
                    return error
            elif isinstance(outcome, BaseException):
                raise outcome
            elif not outcome.get("ok"):
                return outcome  # first sub-batch error wins, verbatim
            else:
                for position, result in zip(subset, outcome["results"], strict=False):
                    results[position] = result
        return None

    # -- coordinated reload ----------------------------------------------
    async def _warm_restore(self, handle: WorkerHandle) -> None:
        """Replay every committed reload into a respawned worker.

        The worker booted from the base spec (version numbers 1..R for
        R base rules files); replaying the committed paths in order
        through the same prepare/commit ops lands it on exactly the
        version numbers its peers serve. Runs under the reload lock —
        the loop re-checks ``_committed`` so a reload that landed while
        the worker was booting is replayed too, never missed.
        """
        applied = 0
        while applied < len(self._committed):
            path = self._committed[applied]
            token = f"restore-{handle.worker_id}-{next(self._restore_tokens)}"
            prepare = await handle.call(
                {"op": "prepare_reload", "path": path, "token": token},
                timeout=self.spec.call_timeout_s,
            )
            if not prepare.get("ok"):
                raise WorkerError(
                    f"worker {handle.worker_id} failed to restore {path}: "
                    f"{prepare.get('error')}"
                )
            commit = await handle.call(
                {"op": "commit_reload", "token": token},
                timeout=self.spec.call_timeout_s,
            )
            if not commit.get("ok"):
                raise WorkerError(
                    f"worker {handle.worker_id} failed to commit restored "
                    f"{path}: {commit.get('error')}"
                )
            applied += 1

    async def _handle_reload(self, payload: dict) -> dict:
        path = payload.get("path")
        if not path:
            return {"ok": False, "error": "ValueError: reload needs a 'path'"}
        telemetry = get_telemetry()
        assert self._reload_lock is not None
        async with self._reload_lock:  # one reload at a time, fleet-wide
            token = f"reload-{next(self._reload_tokens)}"
            # phase 1 — stage on every live worker, traffic still
            # flowing; a dead worker is excluded (its replacement
            # warm-restores to whatever this reload decides)
            participants = [w for w in self.workers if w.alive]
            if not participants:
                telemetry.add("fleet.reload_rejected")
                return {"ok": False, "error": "WorkerError: no live workers"}
            prepares = await asyncio.gather(
                *(
                    worker.call(
                        {"op": "prepare_reload", "path": path, "token": token},
                        timeout=self.spec.call_timeout_s,
                    )
                    for worker in participants
                ),
                return_exceptions=True,
            )
            rejections = [
                p for p in prepares
                if not isinstance(p, BaseException) and not p.get("ok")
            ]
            # workers that *died* during prepare (WorkerError, incl. a
            # wedge hitting the call timeout) drop out of the barrier
            staged = [
                worker for worker, prepared in zip(participants, prepares, strict=True)
                if not isinstance(prepared, BaseException)
                and prepared.get("ok")
            ]
            if rejections or not staged:
                await asyncio.gather(
                    *(
                        worker.call(
                            {"op": "abort_reload", "token": token},
                            timeout=self.spec.call_timeout_s,
                        )
                        for worker in staged
                    ),
                    return_exceptions=True,
                )
                telemetry.add("fleet.reload_rejected")
                error = (
                    rejections[0].get("error", "prepare_reload failed")
                    if rejections
                    else "WorkerError: every live worker died during prepare"
                )
                return {"ok": False, "error": error}
            # phase 2 — barrier: drain in-flight, commit everywhere,
            # reopen; queued requests resume on the new version only
            pause_t0 = time.perf_counter()
            await self._gate.close()
            try:
                # return_exceptions so a worker dying mid-commit still
                # reaches the accounting below instead of leaving
                # survivors silently on the new version
                commits = await asyncio.gather(
                    *(
                        worker.call(
                            {"op": "commit_reload", "token": token},
                            timeout=self.spec.call_timeout_s,
                        )
                        for worker in staged
                    ),
                    return_exceptions=True,
                )
            finally:
                self._gate.open()
            telemetry.observe(
                "fleet.reload_pause_us",
                (time.perf_counter() - pause_t0) * 1e6,
            )
            good = [
                commit for commit in commits
                if not isinstance(commit, BaseException) and commit.get("ok")
            ]
            versions = {commit.get("version") for commit in good}
            # a worker that died mid-commit is not skew — it is dead,
            # and its replacement warm-restores to the committed
            # version; skew is a *live* worker on a different version
            bad_live = [
                worker.worker_id
                for worker, commit in zip(staged, commits, strict=True)
                if worker.alive and (
                    isinstance(commit, BaseException) or not commit.get("ok")
                )
            ]
            if not good or bad_live or len(versions) != 1:
                telemetry.add("fleet.version_skew")
                return {
                    "ok": False,
                    "error": "RuntimeError: partial reload commit: "
                    f"live workers {bad_live} failed, committed workers "
                    f"serve version(s) {sorted(versions)}",
                }
            # committed: respawned workers must replay this reload
            self._committed.append(str(path))
            telemetry.add("fleet.reloads")
        return {
            "ok": True,
            "collective": good[0].get("collective"),
            "version": good[0].get("version"),
            "tag": good[0].get("tag"),
            "workers": len(good),
        }

    # -- deterministic fault injection (chaos harness only) ---------------
    async def _handle_chaos(self, payload: dict) -> dict:
        """Seeded fault-plan ops (see :mod:`repro.serve.chaos`).

        Gated behind ``spec.chaos_ops`` (``--chaos-ops``): a production
        fleet answers "unknown op". Kinds: ``kill`` (SIGKILL the worker
        process), ``wedge`` (SIGSTOP — alive but unresponsive, caught
        by the call timeout), ``garbage`` (worker emits an unparseable
        stdout line before its next response), ``crash`` (worker
        answers, writes a torn line, and dies).
        """
        if not self.spec.chaos_ops:
            return {"ok": False, "error": "ValueError: unknown op 'chaos'"}
        kind = payload.get("kind")
        try:
            slot = int(payload.get("worker", -1))
            handle = self.workers[slot]
        except (TypeError, ValueError, IndexError):
            return {
                "ok": False,
                "error": "ValueError: chaos needs a valid 'worker' index",
            }
        if kind in ("kill", "wedge"):
            signum = signal.SIGKILL if kind == "kill" else signal.SIGSTOP
            if not handle.alive:
                return {"ok": True, "kind": kind, "worker": slot,
                        "skipped": "worker already dead"}
            with contextlib.suppress(ProcessLookupError):
                os.kill(handle.process.pid, signum)
            return {"ok": True, "kind": kind, "worker": slot}
        if kind in ("garbage", "crash"):
            if not handle.alive:
                return {"ok": True, "kind": kind, "worker": slot,
                        "skipped": "worker already dead"}
            try:
                response = await handle.call(
                    {"op": f"chaos_{kind}"}, timeout=self.spec.call_timeout_s
                )
            except WorkerError as exc:
                # the worker died applying the fault — that *is* the
                # fault landing, not an injection failure
                return {"ok": True, "kind": kind, "worker": slot,
                        "note": str(exc)}
            return {**response, "kind": kind, "worker": slot}
        return {
            "ok": False,
            "error": f"ValueError: unknown chaos kind {kind!r}",
        }

    # -- stats + metrics --------------------------------------------------
    async def _worker_counters(self) -> dict[str, int]:
        live = [worker for worker in self.workers if worker.alive]
        for worker in live:
            self._admit(worker)
        responses = await asyncio.gather(
            *(
                worker.call(
                    {"op": "counters"}, timeout=self.spec.call_timeout_s
                )
                for worker in live
            ),
            return_exceptions=True,
        )
        merged: dict[str, int] = {}
        for response in responses:
            if isinstance(response, BaseException) or not response.get("ok"):
                continue
            for name, value in response.get("counters", {}).items():
                merged[name] = merged.get(name, 0) + int(value)
        return merged

    async def _worker_drift(self) -> dict[str, dict[str, float]]:
        """Per-worker drift gauges, labelled with the worker id.

        Residual windows live in each worker's feedback logger, so the
        series stay per-worker (no cross-worker median of medians —
        that would be statistically meaningless); the ``worker`` label
        keeps them distinct on the scrape surface.
        """
        live = [worker for worker in self.workers if worker.alive]
        for worker in live:
            self._admit(worker)
        responses = await asyncio.gather(
            *(
                worker.call({"op": "drift"}, timeout=self.spec.call_timeout_s)
                for worker in live
            ),
            return_exceptions=True,
        )
        from repro.obs.drift import ResidualStats

        merged: dict[str, dict[str, float]] = {}
        for worker, response in zip(live, responses, strict=True):
            if isinstance(response, BaseException) or not response.get("ok"):
                continue
            drift = response.get("drift", {})
            for payload in drift.get("stats", ()):
                stats = ResidualStats.from_dict(payload)
                body = (
                    f'collective="{stats.collective}",'
                    f'version="{stats.version}",'
                    f'worker="{worker.worker_id}"'
                )
                merged.setdefault(
                    "serve.drift.residual_median", {}
                )[body] = stats.median
                merged.setdefault(
                    "serve.drift.residual_mad", {}
                )[body] = stats.mad
                merged.setdefault(
                    "serve.drift.samples", {}
                )[body] = float(stats.n)
        return merged

    def _health(self) -> dict:
        """The shared health snapshot behind /healthz and stats."""
        alive = [w.worker_id for w in self.workers if w.alive]
        restarting = (
            self.supervisor.restarting_ids() if self.supervisor else []
        )
        breakers = self.supervisor.breaker_ids() if self.supervisor else []
        if len(alive) == len(self.workers):
            status = "ok"
        elif alive:
            # failover still covers the whole ring from the survivors
            status = "degraded"
        else:
            status = "down"  # no live worker owns any part of the ring
        return {
            "ok": status == "ok",
            "status": status,
            "workers": len(self.workers),
            "alive": len(alive),
            "restarting": restarting,
            "breakers_open": breakers,
        }

    async def _handle_stats(self) -> dict:
        live = [worker for worker in self.workers if worker.alive]
        for worker in live:
            self._admit(worker)
        worker_stats = await asyncio.gather(
            *(
                worker.call({"op": "stats"}, timeout=self.spec.call_timeout_s)
                for worker in live
            ),
            return_exceptions=True,
        )
        by_worker = dict(zip(live, worker_stats, strict=True))
        telemetry = get_telemetry()
        latency = telemetry.histograms_snapshot().get(
            "fleet.request_latency_us"
        )
        versions: dict[str, set] = {}
        per_worker = []
        for worker in self.workers:
            response = by_worker.get(worker)
            if (
                response is None
                or isinstance(response, BaseException)
                or not response.get("ok")
            ):
                per_worker.append({"worker": worker.worker_id, "ok": False})
                continue
            stats = response["stats"]
            per_worker.append(
                {"worker": worker.worker_id, "ok": True,
                 "inflight": worker.inflight, **stats}
            )
            for collective, info in stats.get("versions", {}).items():
                versions.setdefault(collective, set()).add(info["version"])
        fleet_counters = {
            name: value
            for name, value in telemetry.counters_snapshot().items()
            if name.startswith("fleet.")
        }
        return {
            "ok": True,
            "stats": {
                "fleet": {
                    "workers": len(self.workers),
                    "connections": self._stats.connections,
                    "served": self._stats.served,
                    "uptime_s": time.monotonic() - self._stats.started_at,
                    "versions_consistent": all(
                        len(seen) == 1 for seen in versions.values()
                    ),
                    "health": self._health(),
                    "committed_reloads": len(self._committed),
                    "counters": fleet_counters,
                    "latency_us": (
                        latency.percentiles()
                        if latency is not None and latency.total else {}
                    ),
                    "counters_merged": await self._worker_counters(),
                },
                "workers": per_worker,
            },
        }

    async def metrics_text(self) -> str:
        """The ``GET /metrics`` payload: merged counters + histograms."""
        telemetry = get_telemetry()
        counters = dict(await self._worker_counters())
        for name, value in telemetry.counters_snapshot().items():
            if name.startswith("fleet."):
                counters[name] = value
        health = self._health()
        gauges: dict[str, float | Mapping[str, float]] = {
            "fleet.workers": float(len(self.workers)),
            "fleet.workers_alive": float(health["alive"]),
            "fleet.breakers_open": float(len(health["breakers_open"])),
            "fleet.queue_depth": {
                f'worker="{worker.worker_id}"': float(worker.inflight)
                for worker in self.workers
            },
            "fleet.uptime_seconds": time.monotonic() - self._stats.started_at,
        }
        if self.spec.feedback_dir:
            gauges.update(await self._worker_drift())
        return render_prometheus(
            counters, gauges, telemetry.histograms_snapshot(),
            help_texts=HELP_TEXTS,
        )

    # -- minimal HTTP (scrape surface only) --------------------------------
    async def _handle_http(
        self, first: bytes, reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        get_telemetry().add("fleet.http_requests")
        try:
            method, target, _version = (
                first.decode("latin-1").rstrip("\r\n").split(" ", 2)
            )
        except ValueError:
            await self._http_response(writer, 400, "bad request line\n")
            return
        while True:  # drain headers; the scrape surface ignores them
            line = await reader.readline()
            if line in (b"", b"\r\n", b"\n"):
                break
        if method not in ("GET", "HEAD"):
            await self._http_response(writer, 405, "method not allowed\n")
            return
        target = target.split("?", 1)[0]
        try:
            if target == "/metrics":
                body = await self.metrics_text()
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            elif target == "/healthz":
                health = self._health()
                body = json.dumps(health) + "\n"
                content_type = "application/json"
                if health["status"] == "down":
                    await self._http_response(
                        writer, 503, body, content_type=content_type
                    )
                    return
            elif target == "/stats":
                body = json.dumps((await self._handle_stats())["stats"]) + "\n"
                content_type = "application/json"
            else:
                await self._http_response(writer, 404, "not found\n")
                return
        except OverloadedError:
            # scrape fan-out would pile onto saturated workers: shed it
            await self._http_response(writer, 503, "overloaded\n")
            return
        await self._http_response(
            writer, 200, body if method == "GET" else "",
            content_type=content_type,
        )

    @staticmethod
    async def _http_response(
        writer: asyncio.StreamWriter, status: int, body: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        reason = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 503: "Service Unavailable",
        }.get(status, "OK")
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()


# -- entry points ---------------------------------------------------------
async def _run_until_signalled(spec: FleetSpec, host: str, port: int) -> None:
    fleet = Fleet(spec, host, port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    # handlers registered *before* start(): SIGTERM during a slow boot
    # must tear the partial fleet down, not kill the process uncleanly
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, stop.set)
    start_task = asyncio.create_task(fleet.start())
    stop_task = asyncio.create_task(stop.wait())
    try:
        done, _ = await asyncio.wait(
            {start_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if start_task in done:
            start_task.result()  # boot failures propagate
            await stop_task
    finally:
        stop_task.cancel()
        if not start_task.done():
            start_task.cancel()
        with contextlib.suppress(BaseException):
            await start_task
        print("fleet: shutting down", file=sys.stderr, flush=True)
        await fleet.stop()


def run_fleet(spec: FleetSpec, host: str = "127.0.0.1", port: int = 8077) -> int:
    """Blocking fleet entry point (what ``mpicollpred serve --workers N``
    calls); runs until SIGINT/SIGTERM."""
    try:
        asyncio.run(_run_until_signalled(spec, host, port))
    except KeyboardInterrupt:
        return 130
    return 0


class FleetThread:
    """A fleet on a private event-loop thread (tests and benchmarks).

    ``start()`` blocks until the socket is listening and exposes
    ``port``; ``stop()`` tears everything down. The context-manager
    form keeps worker processes from leaking on assertion failures.
    """

    def __init__(self, spec: FleetSpec, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._spec = spec
        self._host = host
        self._port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._fleet: Fleet | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._error: BaseException | None = None
        self.port: int | None = None

    def __enter__(self) -> "FleetThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self, timeout: float = 60.0) -> "FleetThread":
        self._thread = threading.Thread(
            target=self._thread_main, name="fleet", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("fleet did not start listening in time")
        if self._error is not None:
            raise self._error
        return self

    def worker_pids(self) -> list[int]:
        """Current worker process ids (chaos harnesses, benchmarks)."""
        if self._fleet is None:
            return []
        return [worker.process.pid for worker in self._fleet.workers]

    def _thread_main(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        except BaseException as exc:  # surfaced to start()/stop() callers
            self._error = exc
            self._ready.set()
        finally:
            self._loop.close()

    async def _main(self) -> None:
        self._fleet = Fleet(self._spec, self._host, self._port)
        self._stop = asyncio.Event()
        await self._fleet.start()
        self.port = self._fleet.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self._fleet.stop()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._stop is not None and not self._loop.is_closed():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)


def client_request(
    host: str, port: int, payloads: Iterable[dict], timeout: float = 30.0
) -> list[dict]:
    """Tiny synchronous JSONL client (smoke tests, benchmarks).

    Opens one connection, sends every payload, reads one response per
    payload, closes. Raises on short reads — a dropped response must
    fail loudly, that is the whole point of the reload contract.
    """
    import socket

    payloads = list(payloads)
    with socket.create_connection((host, port), timeout=timeout) as sock:
        blob = "".join(json.dumps(p) + "\n" for p in payloads)
        sock.sendall(blob.encode("utf-8"))
        reader = sock.makefile("r", encoding="utf-8")
        responses = []
        for _ in payloads:
            line = reader.readline()
            if not line:
                raise ConnectionError(
                    f"connection closed after {len(responses)} of "
                    f"{len(payloads)} responses"
                )
            responses.append(json.loads(line))
    return responses


def http_get(host: str, port: int, target: str, timeout: float = 30.0
             ) -> tuple[int, str]:
    """Tiny HTTP GET against the fleet's scrape surface -> (status, body)."""
    import socket

    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(
            f"GET {target} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode("latin-1")
        )
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body.decode("utf-8")


__all__ = [
    "Fleet",
    "FleetSpec",
    "FleetSupervisor",
    "FleetThread",
    "HashRing",
    "OverloadedError",
    "WorkerError",
    "WorkerHandle",
    "client_request",
    "http_get",
    "run_fleet",
]


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.serve.fleet`` — a bare fleet for quick pokes."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.serve.fleet",
        description="boot a prediction fleet (prefer `mpicollpred serve "
        "--workers N`)",
    )
    parser.add_argument("--machine", default="Hydra")
    parser.add_argument("--library", default="Open MPI")
    parser.add_argument("--rules", action="append", default=[])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077)
    args = parser.parse_args(argv)
    spec = FleetSpec(
        machine=args.machine, library=args.library,
        rules=tuple(args.rules), workers=args.workers,
    )
    return run_fleet(spec, host=args.host, port=args.port)


if __name__ == "__main__":
    sys.exit(main())
