"""Multi-worker serving fleet: asyncio front-end over worker processes.

``mpicollpred serve --workers N --port P`` turns the single-process
:class:`~repro.serve.service.PredictionService` into an operating
fleet:

* **N worker processes** (:mod:`repro.serve.worker`), each holding its
  own registry + service (compiled L0 tables and L1 LRU intact),
  spawned as subprocesses and spoken to over stdio JSONL with
  pipelined, ``rid``-matched requests.
* **Consistent-hash routing** on ``(collective, nodes, ppn)``
  (:class:`HashRing`): the same allocation always lands on the same
  worker, so each worker's caches and surface shards stay hot instead
  of every worker cold-missing the whole key space. ``recommend_many``
  batches split into per-worker sub-batches that run concurrently.
* **One listening socket, two protocols**: a connection that opens
  with an HTTP verb gets the scrape surface (``GET /metrics``
  Prometheus text, ``GET /healthz``, ``GET /stats``); anything else is
  the line-oriented JSONL protocol of :mod:`repro.serve.loop`.
* **Coordinated hot reload** — a two-phase version barrier
  (:meth:`Fleet._handle_reload`): phase one stages the candidate on
  every worker while traffic still flows (a worker that rejects it
  aborts the whole reload, old version keeps serving everywhere);
  phase two closes the request gate, waits for in-flight requests to
  drain, commits every worker (commit cannot fail — validation already
  happened), and reopens. Queued requests are *delayed, never
  dropped*, and no response can mix versions: every response either
  completed before the barrier (old version on all workers) or started
  after it (new version on all workers).
* **Metrics export**: per-request latency lands in a
  :class:`repro.obs.Histogram`; a scrape merges ``serve.*`` counters
  across workers and renders everything with
  :func:`repro.serve.exporter.render_prometheus`.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import hashlib
import itertools
import json
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.obs import get_telemetry
from repro.serve.exporter import render_prometheus

#: how many points each worker contributes to the hash ring — enough
#: that removing a worker moves ~1/N of the key space, not half of it
VNODES_PER_WORKER = 64

#: asyncio StreamReader line limit for worker pipes *and* client
#: connections — the default 64 KiB truncates a few-hundred-instance
#: ``recommend_many`` response, and an overflowing readline() raises
#: ValueError, not a short read
STREAM_LIMIT = 16 * 1024 * 1024

#: per-request deadline on a worker call — a wedged-but-alive worker
#: must fail the request (and be killed) rather than hold the reload
#: gate open forever
CALL_TIMEOUT_S = 60.0

#: fleet-side latency buckets (microseconds): routed requests cross two
#: pipe hops, so the floor sits around tens of microseconds
LATENCY_BUCKETS_US = (
    50.0, 100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0,
    20_000.0, 50_000.0, 100_000.0, 200_000.0, 500_000.0, 1_000_000.0,
    5_000_000.0,
)

HELP_TEXTS = {
    "fleet.request_latency_us": "front-end request latency in microseconds",
    "fleet.reload_pause_us": "request-gate pause during reload commits (us)",
    "fleet.requests": "requests handled by the fleet front-end",
    "fleet.reloads": "coordinated reloads committed across all workers",
    "fleet.reload_rejected": "reloads aborted in the prepare phase",
    "fleet.worker_failures": "requests failed because a worker died",
    "serve.compiled.hit": "requests answered by the compiled L0 table",
    "serve.l1.hits": "requests answered by the L1 recommendation LRU",
    "serve.requests": "recommend requests across all workers",
}


class WorkerError(RuntimeError):
    """A worker process died or answered garbage."""


@dataclass(frozen=True)
class FleetSpec:
    """Everything needed to boot a fleet (JSON-safe, worker-shippable)."""

    machine: str = "Hydra"
    library: str = "Open MPI"
    rules: tuple[str, ...] = ()
    workers: int = 2
    mode: str = "exact"
    cache_size: int = 4096
    compiled: bool = True

    def worker_spec(self, worker_id: int) -> dict:
        return {
            "worker_id": worker_id,
            "machine": self.machine,
            "library": self.library,
            "rules": list(self.rules),
            "mode": self.mode,
            "cache_size": self.cache_size,
            "compiled": self.compiled,
        }


def _stable_hash(text: str) -> int:
    """64-bit hash that is identical across processes and runs.

    (Python's builtin ``hash`` is salted per process — useless for
    routing decisions that tests and restarted front-ends must agree
    on.)
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing of routing keys onto worker indices."""

    def __init__(self, n_workers: int, vnodes: int = VNODES_PER_WORKER) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        points = sorted(
            (_stable_hash(f"worker-{worker}/vnode-{vnode}"), worker)
            for worker in range(n_workers)
            for vnode in range(vnodes)
        )
        self.n_workers = n_workers
        self._hashes = [point for point, _ in points]
        self._owners = [worker for _, worker in points]

    @staticmethod
    def route_key(collective: str, nodes: int, ppn: int) -> str:
        """The routing identity: message size deliberately excluded,
        so one allocation's whole msize sweep shares one worker's
        compiled table and LRU."""
        return f"{collective}|{nodes}|{ppn}"

    def worker_for(self, collective: str, nodes: int, ppn: int) -> int:
        point = _stable_hash(self.route_key(collective, nodes, ppn))
        index = bisect.bisect_right(self._hashes, point) % len(self._hashes)
        return self._owners[index]


class _ReloadGate:
    """Requests are readers, a reload commit is the (sole) writer.

    ``close()`` stops admitting new requests and waits for in-flight
    ones to drain; ``open()`` releases the queue. Requests arriving
    while closed *wait* — nothing is ever rejected, which is the "zero
    dropped responses" half of the reload contract. Single event loop,
    so counter updates need no lock.
    """

    def __init__(self) -> None:
        self.inflight = 0
        self._admitting = asyncio.Event()
        self._admitting.set()
        self._drained = asyncio.Event()
        self._drained.set()

    async def acquire(self) -> None:
        while not self._admitting.is_set():
            await self._admitting.wait()
        self.inflight += 1

    def release(self) -> None:
        self.inflight -= 1
        if self.inflight == 0:
            self._drained.set()

    async def close(self) -> None:
        self._admitting.clear()
        if self.inflight:
            self._drained.clear()
            await self._drained.wait()

    def open(self) -> None:
        self._admitting.set()


class WorkerHandle:
    """One worker subprocess: pipelined rid-matched request/response."""

    def __init__(self, worker_id: int,
                 process: asyncio.subprocess.Process) -> None:
        self.worker_id = worker_id
        self.process = process
        self._rids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._reader: asyncio.Task | None = None
        self._write_lock = asyncio.Lock()
        self.dead_reason: str | None = None
        self.ready_info: dict = {}

    @property
    def alive(self) -> bool:
        return self.dead_reason is None and self.process.returncode is None

    async def start(self, timeout: float = 30.0) -> None:
        """Wait for the worker's ready line, then start the dispatcher."""
        line = await asyncio.wait_for(
            self.process.stdout.readline(), timeout
        )
        info = json.loads(line) if line else {}
        if not info.get("ready"):
            raise WorkerError(
                f"worker {self.worker_id} failed to start: "
                f"{info.get('error', 'no ready line')}"
            )
        self.ready_info = info
        self._reader = asyncio.create_task(self._read_loop())

    async def _read_loop(self) -> None:
        reason = "died"
        try:
            while True:
                try:
                    line = await self.process.stdout.readline()
                except ValueError:
                    # response line over STREAM_LIMIT: the stream has
                    # discarded it, so some rid can never be matched
                    # again — the pipe protocol is broken, fail the
                    # worker rather than hang its callers
                    reason = "overflowed its response pipe"
                    break
                if not line:
                    break
                try:
                    response = json.loads(line)
                except ValueError:
                    continue  # a torn line cannot be matched to a caller
                future = self._pending.pop(response.pop("rid", None), None)
                if future is not None and not future.done():
                    future.set_result(response)
        finally:
            # EOF, overflow, or reader cancellation: nothing further
            # will arrive — fail in-flight callers and refuse new ones
            self._fail(reason)

    def _fail(self, reason: str) -> None:
        """Mark this worker unusable: fail pending + future callers."""
        if self.dead_reason is None:
            self.dead_reason = reason
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    WorkerError(f"worker {self.worker_id} {reason}")
                )
        self._pending.clear()
        if self.process.returncode is None:
            with contextlib.suppress(ProcessLookupError):
                self.process.kill()

    async def call(self, payload: dict,
                   timeout: float = CALL_TIMEOUT_S) -> dict:
        """Send one request; resolves when its rid-matched answer lands."""
        if self.dead_reason is not None:
            raise WorkerError(
                f"worker {self.worker_id} {self.dead_reason}"
            )
        if self.process.returncode is not None:
            raise WorkerError(f"worker {self.worker_id} is not running")
        rid = next(self._rids)
        future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        data = json.dumps({**payload, "rid": rid}) + "\n"
        try:
            # one writer at a time: concurrent drain() on the same
            # transport is not supported by asyncio (bpo-29930)
            async with self._write_lock:
                self.process.stdin.write(data.encode("utf-8"))
                await self.process.stdin.drain()
        except (ConnectionResetError, BrokenPipeError) as exc:
            self._pending.pop(rid, None)
            raise WorkerError(f"worker {self.worker_id} died") from exc
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(rid, None)
            # a wedged worker must not wedge the fleet: kill it so the
            # reload gate can drain and callers get a clean error
            self._fail(f"timed out after {timeout:.0f}s")
            raise WorkerError(
                f"worker {self.worker_id} timed out after {timeout:.0f}s"
            ) from None

    async def stop(self, timeout: float = 5.0) -> None:
        # quit-then-reap order matters: cancelling the reader first
        # would run _fail() and kill the process before the graceful
        # quit; instead the quit's EOF lets the reader exit on its own
        if self.process.returncode is None and self.dead_reason is None:
            with contextlib.suppress(
                ConnectionResetError, BrokenPipeError, RuntimeError
            ):
                async with self._write_lock:
                    self.process.stdin.write(b'{"op": "quit"}\n')
                    await self.process.stdin.drain()
                    self.process.stdin.close()
            try:
                await asyncio.wait_for(self.process.wait(), timeout)
            except asyncio.TimeoutError:
                self.process.kill()
                await self.process.wait()
        elif self.process.returncode is None:
            self.process.kill()
            await self.process.wait()
        if self._reader is not None:
            self._reader.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reader


def _worker_env() -> dict[str, str]:
    """Child env whose PYTHONPATH can import this very repro package."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            f"{src_root}{os.pathsep}{existing}" if existing else src_root
        )
    return env


@dataclass
class _FleetStats:
    connections: int = 0
    served: int = 0
    started_at: float = field(default_factory=time.time)


class Fleet:
    """The front-end: socket server + worker pool + reload coordinator."""

    def __init__(self, spec: FleetSpec, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        if spec.workers < 1:
            raise ValueError("a fleet needs at least one worker")
        self.spec = spec
        self.host = host
        self.port = port  # 0 = ephemeral; rewritten by start()
        self.workers: list[WorkerHandle] = []
        self.ring = HashRing(spec.workers)
        self._gate = _ReloadGate()
        self._reload_lock: asyncio.Lock | None = None
        self._reload_tokens = itertools.count(1)
        self._server: asyncio.AbstractServer | None = None
        self._stats = _FleetStats()

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        self._reload_lock = asyncio.Lock()
        env = _worker_env()
        for worker_id in range(self.spec.workers):
            process = await asyncio.create_subprocess_exec(
                sys.executable, "-m", "repro.serve.worker",
                "--spec", json.dumps(self.spec.worker_spec(worker_id)),
                stdin=asyncio.subprocess.PIPE,
                stdout=asyncio.subprocess.PIPE,
                env=env,
                limit=STREAM_LIMIT,
            )
            self.workers.append(WorkerHandle(worker_id, process))
        await asyncio.gather(*(worker.start() for worker in self.workers))
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, limit=STREAM_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]
        telemetry = get_telemetry()
        telemetry.gauge("fleet.workers", len(self.workers))
        # pre-create the latency histogram so an early scrape sees it
        telemetry.histogram("fleet.request_latency_us", LATENCY_BUCKETS_US)
        print(
            f"fleet: listening on {self.host}:{self.port} "
            f"({len(self.workers)} workers)",
            file=sys.stderr, flush=True,
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await asyncio.gather(
            *(worker.stop() for worker in self.workers),
            return_exceptions=True,
        )

    # -- connection handling --------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._stats.connections += 1
        try:
            try:
                first = await reader.readline()
            except ValueError:
                await self._reject_oversized(writer)
                return
            if not first:
                return
            if first.split(b" ", 1)[0] in (b"GET", b"POST", b"HEAD"):
                await self._handle_http(first, reader, writer)
                return
            await self._handle_jsonl(first, reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to answer
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _reject_oversized(self, writer: asyncio.StreamWriter) -> None:
        """A request line over STREAM_LIMIT still gets *a* response.

        The stream has discarded the oversized line, so byte positions
        after it are mid-line garbage — answer the error, then the
        caller closes the connection (it cannot be re-synchronised).
        """
        get_telemetry().add("fleet.bad_lines")
        writer.write((json.dumps({
            "ok": False,
            "error": "ValueError: request line exceeds "
            f"{STREAM_LIMIT} bytes",
        }) + "\n").encode("utf-8"))
        await writer.drain()

    async def _handle_jsonl(
        self, first: bytes, reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """The JSONL protocol of :mod:`repro.serve.loop`, fleet-routed."""
        line = first
        while line:
            stripped = line.strip()
            if stripped:
                response, is_quit = await self._serve_line(stripped)
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
                if is_quit:
                    return
            try:
                line = await reader.readline()
            except ValueError:
                await self._reject_oversized(writer)
                return

    async def _serve_line(self, raw: bytes) -> tuple[dict, bool]:
        telemetry = get_telemetry()
        telemetry.add("fleet.requests")
        t0 = time.perf_counter()
        request_id = None
        is_quit = False
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            telemetry.add("fleet.bad_lines")
            return {"ok": False, "error": f"bad request line: {exc}"}, False
        request_id = payload.get("id")
        op = payload.get("op", "recommend")
        try:
            if op in ("recommend", "recommend_many"):
                await self._gate.acquire()
                try:
                    response = await self._route(op, payload)
                finally:
                    self._gate.release()
            elif op == "reload":
                response = await self._handle_reload(payload)
            elif op == "stats":
                response = await self._handle_stats()
            elif op == "quit":
                response, is_quit = {"ok": True, "bye": True}, True
            else:
                response = {
                    "ok": False, "error": f"ValueError: unknown op {op!r}",
                }
        except WorkerError as exc:
            telemetry.add("fleet.worker_failures")
            response = {"ok": False, "error": f"WorkerError: {exc}"}
        if request_id is not None:
            response["id"] = request_id
        self._stats.served += 1
        telemetry.observe(
            "fleet.request_latency_us",
            (time.perf_counter() - t0) * 1e6,
        )
        return response, is_quit

    # -- request routing -------------------------------------------------
    def _route_instance(self, instance: dict) -> int:
        try:
            return self.ring.worker_for(
                str(instance.get("collective")),
                int(instance.get("nodes", 0)),
                int(instance.get("ppn", 0)),
            )
        except (TypeError, ValueError):
            return 0  # malformed: any worker can render the error

    async def _route(self, op: str, payload: dict) -> dict:
        payload = {k: v for k, v in payload.items() if k != "id"}
        if op == "recommend":
            worker = self.workers[self._route_instance(payload)]
            return await worker.call(payload)
        instances = payload.get("instances")
        if not isinstance(instances, list):
            return {
                "ok": False,
                "error": "ValueError: recommend_many needs an "
                "'instances' list",
            }
        groups: dict[int, list[int]] = {}
        for position, instance in enumerate(instances):
            target = (
                self._route_instance(instance)
                if isinstance(instance, dict) else 0
            )
            groups.setdefault(target, []).append(position)
        ordered = sorted(groups.items())
        responses = await asyncio.gather(*(
            self.workers[target].call({
                "op": "recommend_many",
                "instances": [instances[p] for p in positions],
            })
            for target, positions in ordered
        ))
        results: list = [None] * len(instances)
        for (_, positions), response in zip(ordered, responses):
            if not response.get("ok"):
                return response  # first sub-batch error wins, verbatim
            for position, result in zip(positions, response["results"]):
                results[position] = result
        return {"ok": True, "results": results}

    # -- coordinated reload ----------------------------------------------
    async def _handle_reload(self, payload: dict) -> dict:
        path = payload.get("path")
        if not path:
            return {"ok": False, "error": "ValueError: reload needs a 'path'"}
        telemetry = get_telemetry()
        assert self._reload_lock is not None
        async with self._reload_lock:  # one reload at a time, fleet-wide
            token = f"reload-{next(self._reload_tokens)}"
            # phase 1 — stage everywhere, traffic still flowing
            prepares = await asyncio.gather(
                *(
                    worker.call(
                        {"op": "prepare_reload", "path": path, "token": token}
                    )
                    for worker in self.workers
                ),
                return_exceptions=True,
            )
            failures = [
                p for p in prepares
                if isinstance(p, BaseException) or not p.get("ok")
            ]
            if failures:
                await asyncio.gather(
                    *(
                        worker.call({"op": "abort_reload", "token": token})
                        for worker in self.workers
                    ),
                    return_exceptions=True,
                )
                telemetry.add("fleet.reload_rejected")
                first = failures[0]
                error = (
                    f"WorkerError: {first}" if isinstance(first, BaseException)
                    else first.get("error", "prepare_reload failed")
                )
                return {"ok": False, "error": error}
            # phase 2 — barrier: drain in-flight, commit everywhere,
            # reopen; queued requests resume on the new version only
            pause_t0 = time.perf_counter()
            await self._gate.close()
            try:
                # return_exceptions so a worker dying mid-commit still
                # reaches the skew accounting below instead of leaving
                # survivors silently on the new version
                commits = await asyncio.gather(
                    *(
                        worker.call(
                            {"op": "commit_reload", "token": token}
                        )
                        for worker in self.workers
                    ),
                    return_exceptions=True,
                )
            finally:
                self._gate.open()
            telemetry.observe(
                "fleet.reload_pause_us",
                (time.perf_counter() - pause_t0) * 1e6,
            )
            good = [
                commit for commit in commits
                if not isinstance(commit, BaseException) and commit.get("ok")
            ]
            versions = {commit.get("version") for commit in good}
            if len(good) != len(self.workers) or len(versions) != 1:
                # partial commit: surviving workers already swapped —
                # the fleet is version-skewed until the dead workers
                # are replaced; say so loudly instead of claiming ok
                telemetry.add("fleet.version_skew")
                dead = [
                    worker.worker_id
                    for worker, commit in zip(self.workers, commits)
                    if isinstance(commit, BaseException)
                    or not commit.get("ok")
                ]
                return {
                    "ok": False,
                    "error": "RuntimeError: partial reload commit: "
                    f"workers {dead} failed, surviving workers serve "
                    f"version(s) {sorted(versions)}",
                }
            telemetry.add("fleet.reloads")
        return {
            "ok": True,
            "collective": good[0].get("collective"),
            "version": good[0].get("version"),
            "tag": good[0].get("tag"),
            "workers": len(self.workers),
        }

    # -- stats + metrics --------------------------------------------------
    async def _worker_counters(self) -> dict[str, int]:
        responses = await asyncio.gather(
            *(worker.call({"op": "counters"}) for worker in self.workers),
            return_exceptions=True,
        )
        merged: dict[str, int] = {}
        for response in responses:
            if isinstance(response, BaseException) or not response.get("ok"):
                continue
            for name, value in response.get("counters", {}).items():
                merged[name] = merged.get(name, 0) + int(value)
        return merged

    async def _handle_stats(self) -> dict:
        worker_stats = await asyncio.gather(
            *(worker.call({"op": "stats"}) for worker in self.workers),
            return_exceptions=True,
        )
        telemetry = get_telemetry()
        latency = telemetry.histograms_snapshot().get(
            "fleet.request_latency_us"
        )
        versions: dict[str, set] = {}
        per_worker = []
        for worker, response in zip(self.workers, worker_stats):
            if isinstance(response, BaseException) or not response.get("ok"):
                per_worker.append({"worker": worker.worker_id, "ok": False})
                continue
            stats = response["stats"]
            per_worker.append(
                {"worker": worker.worker_id, "ok": True, **stats}
            )
            for collective, info in stats.get("versions", {}).items():
                versions.setdefault(collective, set()).add(info["version"])
        fleet_counters = {
            name: value
            for name, value in telemetry.counters_snapshot().items()
            if name.startswith("fleet.")
        }
        return {
            "ok": True,
            "stats": {
                "fleet": {
                    "workers": len(self.workers),
                    "connections": self._stats.connections,
                    "served": self._stats.served,
                    "uptime_s": time.time() - self._stats.started_at,
                    "versions_consistent": all(
                        len(seen) == 1 for seen in versions.values()
                    ),
                    "counters": fleet_counters,
                    "latency_us": (
                        latency.percentiles()
                        if latency is not None and latency.total else {}
                    ),
                    "counters_merged": await self._worker_counters(),
                },
                "workers": per_worker,
            },
        }

    async def metrics_text(self) -> str:
        """The ``GET /metrics`` payload: merged counters + histograms."""
        telemetry = get_telemetry()
        counters = dict(await self._worker_counters())
        for name, value in telemetry.counters_snapshot().items():
            if name.startswith("fleet."):
                counters[name] = value
        gauges = {
            "fleet.workers": float(len(self.workers)),
            "fleet.workers_alive": float(
                sum(1 for worker in self.workers if worker.alive)
            ),
            "fleet.uptime_seconds": time.time() - self._stats.started_at,
        }
        return render_prometheus(
            counters, gauges, telemetry.histograms_snapshot(),
            help_texts=HELP_TEXTS,
        )

    # -- minimal HTTP (scrape surface only) --------------------------------
    async def _handle_http(
        self, first: bytes, reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        get_telemetry().add("fleet.http_requests")
        try:
            method, target, _version = (
                first.decode("latin-1").rstrip("\r\n").split(" ", 2)
            )
        except ValueError:
            await self._http_response(writer, 400, "bad request line\n")
            return
        while True:  # drain headers; the scrape surface ignores them
            line = await reader.readline()
            if line in (b"", b"\r\n", b"\n"):
                break
        if method not in ("GET", "HEAD"):
            await self._http_response(writer, 405, "method not allowed\n")
            return
        target = target.split("?", 1)[0]
        if target == "/metrics":
            body = await self.metrics_text()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif target == "/healthz":
            alive = sum(1 for worker in self.workers if worker.alive)
            healthy = alive == len(self.workers)
            body = json.dumps(
                {"ok": healthy, "workers": len(self.workers), "alive": alive}
            ) + "\n"
            content_type = "application/json"
            if not healthy:
                await self._http_response(
                    writer, 503, body, content_type=content_type
                )
                return
        elif target == "/stats":
            body = json.dumps((await self._handle_stats())["stats"]) + "\n"
            content_type = "application/json"
        else:
            await self._http_response(writer, 404, "not found\n")
            return
        await self._http_response(
            writer, 200, body if method == "GET" else "",
            content_type=content_type,
        )

    @staticmethod
    async def _http_response(
        writer: asyncio.StreamWriter, status: int, body: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        reason = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 503: "Service Unavailable",
        }.get(status, "OK")
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()


# -- entry points ---------------------------------------------------------
async def _run_until_signalled(spec: FleetSpec, host: str, port: int) -> None:
    fleet = Fleet(spec, host, port)
    await fleet.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        print("fleet: shutting down", file=sys.stderr, flush=True)
        await fleet.stop()


def run_fleet(spec: FleetSpec, host: str = "127.0.0.1", port: int = 8077) -> int:
    """Blocking fleet entry point (what ``mpicollpred serve --workers N``
    calls); runs until SIGINT/SIGTERM."""
    try:
        asyncio.run(_run_until_signalled(spec, host, port))
    except KeyboardInterrupt:
        return 130
    return 0


class FleetThread:
    """A fleet on a private event-loop thread (tests and benchmarks).

    ``start()`` blocks until the socket is listening and exposes
    ``port``; ``stop()`` tears everything down. The context-manager
    form keeps worker processes from leaking on assertion failures.
    """

    def __init__(self, spec: FleetSpec, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._spec = spec
        self._host = host
        self._port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._fleet: Fleet | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._error: BaseException | None = None
        self.port: int | None = None

    def __enter__(self) -> "FleetThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self, timeout: float = 60.0) -> "FleetThread":
        self._thread = threading.Thread(
            target=self._thread_main, name="fleet", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("fleet did not start listening in time")
        if self._error is not None:
            raise self._error
        return self

    def _thread_main(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        except BaseException as exc:  # surfaced to start()/stop() callers
            self._error = exc
            self._ready.set()
        finally:
            self._loop.close()

    async def _main(self) -> None:
        self._fleet = Fleet(self._spec, self._host, self._port)
        self._stop = asyncio.Event()
        await self._fleet.start()
        self.port = self._fleet.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self._fleet.stop()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._stop is not None and not self._loop.is_closed():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)


def client_request(
    host: str, port: int, payloads: Iterable[dict], timeout: float = 30.0
) -> list[dict]:
    """Tiny synchronous JSONL client (smoke tests, benchmarks).

    Opens one connection, sends every payload, reads one response per
    payload, closes. Raises on short reads — a dropped response must
    fail loudly, that is the whole point of the reload contract.
    """
    import socket

    payloads = list(payloads)
    with socket.create_connection((host, port), timeout=timeout) as sock:
        blob = "".join(json.dumps(p) + "\n" for p in payloads)
        sock.sendall(blob.encode("utf-8"))
        reader = sock.makefile("r", encoding="utf-8")
        responses = []
        for _ in payloads:
            line = reader.readline()
            if not line:
                raise ConnectionError(
                    f"connection closed after {len(responses)} of "
                    f"{len(payloads)} responses"
                )
            responses.append(json.loads(line))
    return responses


def http_get(host: str, port: int, target: str, timeout: float = 30.0
             ) -> tuple[int, str]:
    """Tiny HTTP GET against the fleet's scrape surface -> (status, body)."""
    import socket

    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(
            f"GET {target} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode("latin-1")
        )
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body.decode("utf-8")


__all__ = [
    "Fleet",
    "FleetSpec",
    "FleetThread",
    "HashRing",
    "WorkerError",
    "WorkerHandle",
    "client_request",
    "http_get",
    "run_fleet",
]


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.serve.fleet`` — a bare fleet for quick pokes."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.serve.fleet",
        description="boot a prediction fleet (prefer `mpicollpred serve "
        "--workers N`)",
    )
    parser.add_argument("--machine", default="Hydra")
    parser.add_argument("--library", default="Open MPI")
    parser.add_argument("--rules", action="append", default=[])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077)
    args = parser.parse_args(argv)
    spec = FleetSpec(
        machine=args.machine, library=args.library,
        rules=tuple(args.rules), workers=args.workers,
    )
    return run_fleet(spec, host=args.host, port=args.port)


if __name__ == "__main__":
    sys.exit(main())
