"""Serving caches: interned instance keys + a thread-safe LRU.

Level 1 of the serving stack (:mod:`repro.serve.service`): a bounded
LRU over fully-resolved recommendations, keyed by the interned
``(collective, nodes, ppn, msize)`` tuple. Hits and misses land on
:mod:`repro.obs` counters (``<namespace>.hits`` / ``.misses`` /
``.evictions``) so a live service's cache behaviour is visible in the
same telemetry stream as everything else.

Keys are *interned*: one canonical tuple object per distinct instance,
shared between the cache, in-flight batches and any shard indexes. A
serving workload hammers a small working set of instances millions of
times — re-allocating the key tuple per request is pure garbage
pressure, and identity-equal keys make dict probes cheaper.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from typing import Any, Hashable

from repro.obs import get_telemetry

InstanceKey = tuple[str, int, int, int]


class KeyInterner:
    """Canonicalise instance keys to one shared tuple per instance.

    Bounded: when the intern table outgrows ``capacity`` it is simply
    dropped and restarted — correctness never depends on interning
    (equal tuples still compare equal), only allocation traffic does.
    """

    def __init__(self, capacity: int = 65536) -> None:
        self.capacity = capacity
        self._table: dict[InstanceKey, InstanceKey] = {}
        self._lock = threading.Lock()

    def key(
        self, collective: str, nodes: int, ppn: int, msize: int
    ) -> InstanceKey:
        probe = (sys.intern(str(collective)), int(nodes), int(ppn), int(msize))
        with self._lock:
            canonical = self._table.get(probe)
            if canonical is not None:
                return canonical
            if len(self._table) >= self.capacity:
                self._table.clear()
            self._table[probe] = probe
            return probe

    def __len__(self) -> int:
        with self._lock:
            return len(self._table)


class LRUCache:
    """Thread-safe bounded LRU with telemetry-wired hit/miss counters."""

    def __init__(self, capacity: int, namespace: str = "serve.cache") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.namespace = namespace
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Any | None:
        """The cached value, refreshed to most-recently-used; None = miss."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                get_telemetry().add(f"{self.namespace}.misses")
                return None
            self._data.move_to_end(key)
        get_telemetry().add(f"{self.namespace}.hits")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        evicted = False
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)
                evicted = True
        if evicted:
            get_telemetry().add(f"{self.namespace}.evictions")

    def invalidate(self, predicate=None) -> int:
        """Drop entries (all, or those whose *key* matches ``predicate``)."""
        with self._lock:
            if predicate is None:
                dropped = len(self._data)
                self._data.clear()
            else:
                doomed = [k for k in self._data if predicate(k)]
                for k in doomed:
                    del self._data[k]
                dropped = len(doomed)
        if dropped:
            get_telemetry().add(f"{self.namespace}.invalidated", dropped)
        return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> dict[str, int]:
        """Point-in-time counter values for this cache's namespace."""
        counters = get_telemetry().counters_snapshot()
        return {
            "size": len(self),
            "capacity": self.capacity,
            "hits": counters.get(f"{self.namespace}.hits", 0),
            "misses": counters.get(f"{self.namespace}.misses", 0),
            "evictions": counters.get(f"{self.namespace}.evictions", 0),
        }
