"""The in-process prediction service: batched, cached, hot-reloadable.

:class:`PredictionService` is the request path in front of a
:class:`~repro.serve.registry.ModelRegistry`. A ``recommend`` call
walks up to four levels:

0. **L0 — compiled decision tables** (opt-in, ``compiled=True``):
   per live ``(collective, version)`` a
   :class:`~repro.serve.compiled.CompiledTable` — the model lowered
   into a flat branchless ``msize-bucket x node x ppn -> config id``
   buffer. A covered ``recommend`` is one bounds-clamp plus one array
   index (no dict hop, no cache bookkeeping), ``recommend_many`` loops
   entirely in the C kernel / vectorised numpy, and instances the
   table cannot answer *exactly* fall through to the levels below.
   Hot-reload safety rides the same version barrier as the L1: a
   table whose version no longer matches the live registry version is
   rebuilt before it answers, so a completed swap can never serve a
   stale table.
1. **L1 — recommendation LRU** (:class:`~repro.serve.cache.LRUCache`):
   fully-resolved answers keyed by the interned instance tuple. A hit
   whose model version still matches the live registry version returns
   without touching any model; a version mismatch after a hot-reload is
   treated as a miss, so a completed swap can never serve stale
   answers.
2. **L2 — surface shards** (``mode="surface"``): per
   ``(collective, version)`` a lazily materialised
   :class:`~repro.core.surface.DecisionSurface` over the model's
   serving grid — built once with a single batched
   ``predict_times`` sweep, then answering by O(1) nearest-cell
   lookup. Stale shards are pruned when their version is unseated.
3. **The model itself** (``mode="exact"``): concurrent misses for the
   same collective are *coalesced* — the first caller becomes the
   batch leader, drains everything queued for that collective, and
   issues **one** vectorised ``select_configs`` call; followers block
   on their own slot and receive per-caller-correct results. Exact
   mode is bit-identical to a cold
   :meth:`repro.core.tuner.AutoTuner.recommend` (the property tests
   pin this), including the fallback: instances no model covers get
   the library's default decision logic.

Every level feeds :mod:`repro.obs` counters (``serve.requests``,
``serve.compiled.hit/fallthrough``, ``serve.l1.hits/misses``,
``serve.batches``, ``serve.coalesced``, ``serve.fallback_default``,
``serve.surface.builds``), so a live service is observable through the
same telemetry stream as the campaign and training layers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.obs import get_telemetry
from repro.serve.cache import InstanceKey, KeyInterner, LRUCache
from repro.serve.compiled import compile_servable
from repro.serve.registry import (
    ModelRegistry,
    ModelVersion,
    SelectorModel,
)

#: memoised CollectiveKind coercion — the enum constructor costs more
#: than a whole compiled-table lookup, and only valid names are cached
#: (the ValueError for unknown collectives propagates unchanged)
_KIND_CACHE: dict = {}


def _kind(collective) -> CollectiveKind:
    kind = _KIND_CACHE.get(collective)
    if kind is None:
        kind = _KIND_CACHE[collective] = CollectiveKind(collective)
    return kind


@dataclass(frozen=True)
class Recommendation:
    """One fully-resolved answer: the config plus its provenance."""

    collective: CollectiveKind
    nodes: int
    ppn: int
    msize: int
    config: AlgorithmConfig
    #: "model" (a live model answered) or "default" (library fallback)
    source: str
    #: registry version that produced the answer (0 = no model published)
    version: int
    #: served straight from the L1 cache
    cached: bool = False
    #: answered by the L0 compiled decision table
    compiled: bool = False

    def to_dict(self) -> dict:
        """JSON-friendly rendering (what the serve loop emits)."""
        return {
            "collective": str(self.collective),
            "nodes": self.nodes,
            "ppn": self.ppn,
            "msize": self.msize,
            "algid": self.config.algid,
            "algorithm": self.config.name,
            "params": self.config.param_dict,
            "label": self.config.label,
            "source": self.source,
            "version": self.version,
            "cached": self.cached,
            "compiled": self.compiled,
        }


class _CompiledEntry:
    """One collective's L0 state for one registry version.

    ``table is None`` marks an *uncompilable* version (wrappers, test
    doubles, failed lowerings): the tier steps aside for it without
    retrying the build on every request. ``template`` is the prototype
    ``Recommendation.__dict__`` — covered answers are materialised by
    copying it and filling the four per-instance slots, which skips the
    frozen-dataclass ``__init__`` (one ``object.__setattr__`` per
    field) on the hottest path in the service.
    """

    __slots__ = ("version", "table", "template")

    def __init__(self, version: int, table, template: dict | None) -> None:
        self.version = version
        self.table = table
        self.template = template


class _Slot:
    """One caller's seat in a coalesced batch."""

    __slots__ = ("key", "done", "result", "error")

    def __init__(self, key: InstanceKey) -> None:
        self.key = key
        self.done = threading.Event()
        self.result: Recommendation | None = None
        self.error: BaseException | None = None


class _Batcher:
    """Leader/follower request coalescing for one collective.

    Arrivals enqueue their slot; whoever finds no active leader becomes
    the leader, drains the queue (everything that arrived while any
    previous leader was computing), and serves the whole batch with one
    vectorised model call. There is no artificial delay: a lone request
    is a batch of one, and coalescing emerges exactly when the service
    is actually contended.
    """

    def __init__(self, service: "PredictionService",
                 collective: CollectiveKind) -> None:
        self._service = service
        self._collective = collective
        self._lock = threading.Lock()
        self._pending: list[_Slot] = []
        self._leader_active = False

    def submit(self, key: InstanceKey) -> Recommendation:
        slot = _Slot(key)
        with self._lock:
            self._pending.append(slot)
            lead = not self._leader_active
            if lead:
                self._leader_active = True
        while lead:
            with self._lock:
                batch = self._pending
                self._pending = []
                if not batch:
                    self._leader_active = False
                    break
            self._execute(batch)
            # drain again: followers may have queued while we computed
        slot.done.wait()
        if slot.error is not None:
            raise slot.error
        assert slot.result is not None
        return slot.result

    def _execute(self, batch: list[_Slot]) -> None:
        try:
            results = self._service._compute_batch(
                self._collective, [slot.key for slot in batch]
            )
            for slot, result in zip(batch, results, strict=True):
                slot.result = result
        except BaseException as exc:  # propagate to every caller
            for slot in batch:
                slot.error = exc
        finally:
            for slot in batch:
                slot.done.set()


class PredictionService:
    """Batched + cached ``recommend`` front-end over a model registry."""

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        mode: str = "exact",
        cache_size: int = 4096,
        compiled: bool = False,
        feedback=None,
    ) -> None:
        if mode not in ("exact", "surface"):
            raise ValueError(f"mode must be 'exact' or 'surface', not {mode!r}")
        self.registry = registry
        self.mode = mode
        self.compiled = compiled
        #: optional FeedbackLogger — measures + logs every served
        #: recommendation (the closed loop's measure step); never on
        #: the error path of a request
        self.feedback = feedback
        self._interner = KeyInterner()
        self._l1 = LRUCache(cache_size, namespace="serve.l1")
        self._batchers: dict[CollectiveKind, _Batcher] = {}
        self._batchers_lock = threading.Lock()
        #: (collective, version) -> DecisionSurface, built lazily
        self._shards: dict = {}
        self._shards_lock = threading.Lock()
        #: collective -> _CompiledEntry for the last-seen version (L0)
        self._tables: dict[CollectiveKind, _CompiledEntry] = {}
        self._tables_lock = threading.Lock()

    # -- public API ------------------------------------------------------
    def recommend(
        self, collective: CollectiveKind | str, nodes: int, ppn: int,
        msize: int,
    ) -> Recommendation:
        """Predicted-fastest configuration for one instance."""
        collective = _kind(collective)
        telemetry = get_telemetry()
        telemetry.add("serve.requests")
        if self.compiled:
            rec = self._compiled_lookup(collective, nodes, ppn, msize)
            if rec is not None:
                telemetry.add("serve.compiled.hit")
                self._note(rec)
                return rec
            telemetry.add("serve.compiled.fallthrough")
        key = self._interner.key(str(collective), nodes, ppn, msize)
        cached = self._l1_lookup(key, collective)
        if cached is not None:
            self._note(cached)
            return cached
        rec = self._batcher(collective).submit(key)
        self._note(rec)
        return rec

    def recommend_many(
        self,
        instances: Iterable[tuple[CollectiveKind | str, int, int, int]],
    ) -> list[Recommendation]:
        """Explicit batch path: one vectorised call per collective.

        Answers come back in input order; instances already in the L1
        cache are served from it, the rest of each collective's group
        goes through a single ``select_configs`` sweep.
        """
        instances = list(instances)
        telemetry = get_telemetry()
        telemetry.add("serve.requests", len(instances))
        results: list[Recommendation | None] = [None] * len(instances)
        if self.compiled and instances:
            self._compiled_lookup_many(instances, results)
        misses: dict[CollectiveKind, list[tuple[int, InstanceKey]]] = {}
        for pos, (coll, nodes, ppn, msize) in enumerate(instances):
            if results[pos] is not None:
                continue
            coll = _kind(coll)
            key = self._interner.key(str(coll), nodes, ppn, msize)
            hit = self._l1_lookup(key, coll)
            if hit is not None:
                results[pos] = hit
            else:
                misses.setdefault(coll, []).append((pos, key))
        for coll, group in misses.items():
            computed = self._compute_batch(coll, [key for _, key in group])
            for (pos, _), rec in zip(group, computed, strict=True):
                results[pos] = rec
        if self.feedback is not None:
            self.feedback.record_many([r for r in results if r is not None])
        return results  # type: ignore[return-value]

    def _note(self, rec: Recommendation) -> None:
        if self.feedback is not None:
            self.feedback.record(rec)

    def stats(self) -> dict:
        """Cache + version snapshot (what ``{"op": "stats"}`` returns)."""
        counters = get_telemetry().counters_snapshot()
        return {
            "mode": self.mode,
            "compiled": {
                "enabled": self.compiled,
                "hits": counters.get("serve.compiled.hit", 0),
                "fallthroughs": counters.get("serve.compiled.fallthrough", 0),
                "builds": counters.get("serve.compiled.builds", 0),
                "tables": {
                    str(coll): (
                        {"version": entry.version, **entry.table.coverage()}
                        if entry.table is not None
                        else {"version": entry.version, "compilable": False}
                    )
                    for coll, entry in list(self._tables.items())
                },
            },
            "l1": self._l1.stats(),
            "versions": {
                str(coll): {
                    "version": mv.version,
                    "tag": mv.tag,
                    "source": mv.source,
                }
                for coll, mv in self.registry.snapshot().items()
            },
            "counters": {
                name: value
                for name, value in counters.items()
                if name.startswith("serve.")
            },
        }

    # -- L0: compiled decision tables ------------------------------------
    def _compiled_entry(
        self, collective: CollectiveKind
    ) -> _CompiledEntry | None:
        """The live version's table entry, rebuilt after a hot-reload."""
        mv = self.registry.get(collective)
        if mv is None:
            return None
        entry = self._tables.get(collective)
        if entry is None or entry.version != mv.version:
            entry = self._build_table(collective, mv)
        return entry

    def _compiled_lookup(
        self, collective: CollectiveKind, nodes: int, ppn: int, msize: int
    ) -> Recommendation | None:
        entry = self._compiled_entry(collective)
        if entry is None or entry.table is None:
            return None
        cid = entry.table.lookup(nodes, ppn, msize)
        if cid < 0:
            return None
        rec = object.__new__(Recommendation)
        ns = rec.__dict__
        ns.update(entry.template)
        ns["nodes"] = nodes
        ns["ppn"] = ppn
        ns["msize"] = msize
        ns["config"] = entry.table.configs[cid]
        return rec

    def _compiled_lookup_many(
        self,
        instances: Sequence[tuple],
        results: list,
    ) -> None:
        """Fill ``results`` for every instance the compiled tier covers."""
        groups: dict = {}
        for pos, inst in enumerate(instances):
            groups.setdefault(inst[0], []).append(pos)
        hits = 0
        for raw_coll, positions in groups.items():
            entry = self._compiled_entry(_kind(raw_coll))
            if entry is None or entry.table is None:
                continue
            try:
                nodes = np.asarray(
                    [instances[p][1] for p in positions], dtype=np.int64
                )
                ppn = np.asarray(
                    [instances[p][2] for p in positions], dtype=np.int64
                )
                msize = np.asarray(
                    [instances[p][3] for p in positions], dtype=np.int64
                )
            except OverflowError:
                # beyond-int64 msize: the interpreted path owns it
                continue
            cids = entry.table.lookup_many(nodes, ppn, msize)
            template = entry.template
            configs = entry.table.configs
            for pos, cid in zip(positions, cids.tolist(), strict=True):
                if cid < 0:
                    continue
                inst = instances[pos]
                rec = object.__new__(Recommendation)
                ns = rec.__dict__
                ns.update(template)
                ns["nodes"] = inst[1]
                ns["ppn"] = inst[2]
                ns["msize"] = inst[3]
                ns["config"] = configs[cid]
                results[pos] = rec
                hits += 1
        telemetry = get_telemetry()
        if hits:
            telemetry.add("serve.compiled.hit", hits)
        if hits < len(instances):
            telemetry.add("serve.compiled.fallthrough", len(instances) - hits)

    def _build_table(
        self, collective: CollectiveKind, mv: ModelVersion
    ) -> _CompiledEntry:
        """Lower ``mv.model`` into a table entry; version-barriered swap."""
        telemetry = get_telemetry()
        try:
            with telemetry.span(
                "serve/compile_table", collective=str(collective),
                version=mv.version,
            ):
                table = compile_servable(mv.model, mv.version)
        except Exception:
            telemetry.add("serve.compiled.errors")
            table = None
        if table is None:
            entry = _CompiledEntry(mv.version, None, None)
        else:
            telemetry.add("serve.compiled.builds")
            template = {
                "collective": collective, "nodes": 0, "ppn": 0, "msize": 0,
                "config": None, "source": "model", "version": mv.version,
                "cached": False, "compiled": True,
            }
            entry = _CompiledEntry(mv.version, table, template)
        with self._tables_lock:
            current = self._tables.get(collective)
            if current is not None and current.version == mv.version:
                return current  # a concurrent builder won the race
            self._tables[collective] = entry
        return entry

    # -- internals -------------------------------------------------------
    def _l1_lookup(
        self, key: InstanceKey, collective: CollectiveKind
    ) -> Recommendation | None:
        hit = self._l1.get(key)
        if hit is None:
            return None
        live = self.registry.get(collective)
        live_version = live.version if live is not None else 0
        if hit.version != live_version:
            # a hot-reload unseated the version this answer came from
            get_telemetry().add("serve.l1.stale")
            return None
        return replace(hit, cached=True)

    def _batcher(self, collective: CollectiveKind) -> _Batcher:
        with self._batchers_lock:
            batcher = self._batchers.get(collective)
            if batcher is None:
                batcher = self._batchers[collective] = _Batcher(
                    self, collective
                )
            return batcher

    def _compute_batch(
        self, collective: CollectiveKind, keys: Sequence[InstanceKey]
    ) -> list[Recommendation]:
        """One vectorised lookup for a batch of cache misses."""
        telemetry = get_telemetry()
        telemetry.add("serve.batches")
        if len(keys) > 1:
            telemetry.add("serve.coalesced", len(keys))
        mv = self.registry.get(collective)
        nodes = np.asarray([k[1] for k in keys], dtype=np.int64)
        ppn = np.asarray([k[2] for k in keys], dtype=np.int64)
        msize = np.asarray([k[3] for k in keys], dtype=np.int64)
        with telemetry.span(
            "serve/batch", absolute=True, collective=str(collective),
            size=len(keys), mode=self.mode,
            version=mv.version if mv else 0,
        ):
            if mv is None:
                configs: list[AlgorithmConfig | None] = [None] * len(keys)
            elif self.mode == "surface" and isinstance(mv.model, SelectorModel):
                shard = self._shard(collective, mv)
                ids = shard.select_ids(nodes, ppn, msize)
                configs = [
                    shard.configs[int(i)] if i >= 0 else None for i in ids
                ]
            else:
                configs = mv.model.select_configs(nodes, ppn, msize)
        version = mv.version if mv is not None else 0
        results = []
        for key, config in zip(keys, configs, strict=True):
            if config is None:
                config = self.registry.default_config(
                    collective, key[1], key[2], key[3]
                )
                telemetry.add("serve.fallback_default")
                source = "default"
            else:
                source = "model"
            rec = Recommendation(
                collective=collective, nodes=key[1], ppn=key[2],
                msize=key[3], config=config, source=source, version=version,
            )
            self._l1.put(key, rec)
            results.append(rec)
        return results

    def _shard(self, collective: CollectiveKind, mv: ModelVersion):
        """The lazily-built decision-surface shard for one live version."""
        shard_key = (collective, mv.version)
        with self._shards_lock:
            shard = self._shards.get(shard_key)
            if shard is not None:
                return shard
        # build outside the lock: one batched sweep, potentially slow —
        # a concurrent builder for the same key just wins the race
        assert isinstance(mv.model, SelectorModel)
        built = mv.model.build_surface()
        telemetry = get_telemetry()
        telemetry.add("serve.surface.builds")
        with self._shards_lock:
            shard = self._shards.setdefault(shard_key, built)
            # prune shards of unseated versions for this collective
            stale = [
                k for k in self._shards
                if k[0] == collective and k[1] != mv.version
            ]
            for k in stale:
                del self._shards[k]
            if stale:
                telemetry.add("serve.surface.pruned", len(stale))
        return shard


__all__ = [
    "PredictionService",
    "Recommendation",
]
