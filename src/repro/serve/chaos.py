"""Deterministic fault plans for the serving fleet.

The offline pipeline already treats faults as first-class, seeded
inputs (:mod:`repro.bench.faults`): every fault decision is a pure
function of ``(seed, site identity)``, which is what makes chaos runs
replayable bit for bit. This module applies the same discipline to the
*online* tier. A :class:`FleetChaosPlan` decides — before a single
request is sent — exactly which worker gets killed, wedged
(``SIGSTOP``), garbage-corrupted, or crashed mid-line, and at which
request index, as a pure function of
``stable_seed("fleet-chaos", seed, n_requests, n_workers)``.

The driver (``scripts/smoke_fleet_chaos.py``) walks a request sequence,
fires ``plan.at(i)`` events through the fleet's gated ``chaos`` op, and
asserts the acceptance bar of ISSUE 8: zero client-visible failures and
answers bit-identical to a fault-free twin fleet, across repeated
worker kills and one hot reload with a wedge in its prepare phase.

Fault kinds (see the failure-classes table in ``docs/robustness.md``):

==========  =========================================================
kind        what happens to the worker
==========  =========================================================
``kill``    ``SIGKILL`` from the front-end — pipe EOF, no goodbye
``wedge``   ``SIGSTOP`` — alive but unresponsive; only the per-call
            deadline can detect it (scheduled to land *mid-reload*)
``garbage``  the worker emits an unparseable stdout line before its
            next response (a torn log write leaking into the protocol)
``crash``   the worker answers, writes a *partial* line, and
            ``os._exit(23)`` s — EOF with a torn tail
==========  =========================================================

Plan shape: every worker is killed once in an early stratum of the
request range and crashed once in a late stratum (so respawned workers
die again — the supervisor's crash-window accounting is exercised, not
just its happy path), the wedge lands exactly at ``reload_at``, and
garbage events scatter between the strata. Events never share a
request index, so the driver's event loop stays a simple dict lookup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.utils.rng import stable_seed

#: fault kinds a plan may schedule (mirrors Fleet._handle_chaos)
CHAOS_KINDS = ("kill", "wedge", "garbage", "crash")

#: per-round strata as fractions of the request range: each worker is
#: killed somewhere in the first window and crashed in the second, with
#: the reload (and its wedge) in the gap between them
KILL_WINDOW = (0.05, 0.45)
CRASH_WINDOW = (0.65, 0.92)
RELOAD_AT_FRACTION = 0.55


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: *kind* hits *worker* at request *index*."""

    index: int
    kind: str
    worker: int

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r}")
        if self.index < 0 or self.worker < 0:
            raise ValueError("chaos event index/worker must be >= 0")


@dataclass(frozen=True)
class FleetChaosPlan:
    """A fully resolved fault schedule for one chaos campaign."""

    seed: int
    n_requests: int
    n_workers: int
    reload_at: int
    events: tuple[ChaosEvent, ...]
    _by_index: dict[int, ChaosEvent] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        by_index: dict[int, ChaosEvent] = {}
        for event in self.events:
            if event.index in by_index:
                raise ValueError(
                    f"two chaos events share request index {event.index}"
                )
            if not 0 <= event.index < self.n_requests:
                raise ValueError(
                    f"event index {event.index} outside the request range"
                )
            if event.worker >= self.n_workers:
                raise ValueError(
                    f"event worker {event.worker} outside the fleet"
                )
            by_index[event.index] = event
        object.__setattr__(self, "_by_index", by_index)

    def at(self, index: int) -> ChaosEvent | None:
        """The event scheduled at request ``index`` (None = clean)."""
        return self._by_index.get(index)

    def kinds(self) -> dict[str, int]:
        """Event count per kind (smoke-report summary)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def describe(self) -> str:
        rows = ", ".join(
            f"{event.kind}@{event.index}->w{event.worker}"
            for event in self.events
        )
        return (
            f"FleetChaosPlan(seed={self.seed}, n={self.n_requests}, "
            f"workers={self.n_workers}, reload_at={self.reload_at}: {rows})"
        )


def build_plan(
    seed: int,
    n_requests: int,
    n_workers: int,
    *,
    crash_round: bool = True,
    garbage_events: int = 2,
    wedge: bool = True,
) -> FleetChaosPlan:
    """A deterministic fault schedule for ``n_requests`` requests.

    Pure function of its arguments: the RNG is keyed by
    ``stable_seed("fleet-chaos", seed, n_requests, n_workers)``, so the
    same campaign shape always yields the same schedule — on any
    machine, in any process, which is what lets the smoke run be
    replayed exactly when it fails.

    Guarantees (property-tested in ``tests/serve/test_chaos.py``):

    * every worker appears in exactly one ``kill`` event inside
      ``KILL_WINDOW`` and (when ``crash_round``) one ``crash`` event
      inside ``CRASH_WINDOW``;
    * kill events for different workers are spaced at least one
      stratum apart, so the supervisor always has room to respawn the
      previous victim before the next one dies (the plan exercises
      degraded serving, never a total outage by construction);
    * the wedge lands exactly at ``reload_at`` — the driver fires it
      and then immediately issues the reload, putting the stopped
      worker inside the reload's prepare phase;
    * no two events share a request index.
    """
    if n_requests < 40 * max(n_workers, 1):
        raise ValueError(
            "chaos plan needs >= 40 requests per worker to spread "
            f"events (got {n_requests} for {n_workers} workers)"
        )
    if n_workers < 1:
        raise ValueError("chaos plan needs at least one worker")
    rng = random.Random(
        stable_seed("fleet-chaos", seed, n_requests, n_workers)
    )
    taken: set[int] = set()

    def pick(lo: int, hi: int) -> int:
        for _ in range(10_000):
            index = rng.randrange(lo, max(hi, lo + 1))
            if index not in taken:
                taken.add(index)
                return index
        raise RuntimeError("could not place a chaos event")  # pragma: no cover

    events: list[ChaosEvent] = []
    windows = [(KILL_WINDOW, "kill")]
    if crash_round:
        windows.append((CRASH_WINDOW, "crash"))
    for (lo_frac, hi_frac), kind in windows:
        lo = int(lo_frac * n_requests)
        hi = int(hi_frac * n_requests)
        stratum = (hi - lo) // n_workers
        order = list(range(n_workers))
        rng.shuffle(order)
        for slot, worker in enumerate(order):
            index = pick(lo + slot * stratum, lo + (slot + 1) * stratum)
            events.append(ChaosEvent(index, kind, worker))

    reload_at = int(RELOAD_AT_FRACTION * n_requests)
    reload_at += rng.randrange(-max(n_requests // 100, 1),
                               max(n_requests // 100, 1) + 1)
    while reload_at in taken:
        reload_at += 1
    taken.add(reload_at)
    if wedge:
        events.append(ChaosEvent(reload_at, "wedge",
                                 rng.randrange(n_workers)))

    garbage_lo = int(KILL_WINDOW[0] * n_requests)
    garbage_hi = int(CRASH_WINDOW[1] * n_requests)
    for _ in range(garbage_events):
        index = pick(garbage_lo, garbage_hi)
        events.append(
            ChaosEvent(index, "garbage", rng.randrange(n_workers))
        )

    return FleetChaosPlan(
        seed=seed,
        n_requests=n_requests,
        n_workers=n_workers,
        reload_at=reload_at,
        events=tuple(sorted(events, key=lambda event: event.index)),
    )


# -- campaign verification ---------------------------------------------
# The assertion core shared by the CI smoke harness
# (scripts/smoke_fleet_chaos.py) and the in-process fleet unit tests:
# pure functions over collected campaign evidence, so the same contract
# is checked whether the fleet ran behind the real CLI or in a thread.

#: cache-tier provenance differs legitimately after a respawn (a fresh
#: worker's L1 is cold); the *answer* must not
PROVENANCE_FIELDS = ("cached", "compiled")


def strip_provenance(response: dict) -> dict:
    """Drop the response fields a respawn may legitimately change."""
    return {
        key: value for key, value in response.items()
        if key not in PROVENANCE_FIELDS
    }


def verify_chaos_invariants(
    *,
    n_workers: int,
    restarts: float,
    garbage: float,
    health: dict,
    stats: dict,
    expected_reloads: int = 1,
) -> list[str]:
    """The campaign-level self-healing contract; returns violations.

    ``stats`` is the fleet block of ``{"op": "stats"}``; ``restarts``/
    ``garbage`` are the scraped ``fleet_worker_restarts_total`` /
    ``fleet_worker_garbage_lines_total`` metric values.
    """
    failures: list[str] = []
    if restarts < n_workers:
        failures.append(
            f"fleet_worker_restarts_total {restarts} < {n_workers}: "
            "not every killed worker was respawned"
        )
    if garbage < 1:
        failures.append("no garbage stdout line was ever skipped")
    if health.get("status") != "ok":
        failures.append(f"final healthz not ok: {health}")
    if stats.get("committed_reloads") != expected_reloads:
        failures.append(
            f"reload committed {stats.get('committed_reloads')} times, "
            f"expected exactly {expected_reloads}"
        )
    if not stats.get("versions_consistent"):
        failures.append(f"version skew after the campaign: {stats}")
    return failures


def verify_bit_identity(
    chaos_answers: list[dict],
    clean_answers: list[dict],
    *,
    max_reported: int = 3,
) -> list[str]:
    """Chaos answers must equal the fault-free twin's, provenance aside."""
    failures: list[str] = []
    mismatches = 0
    for index, (chaotic, clean) in enumerate(
        zip(chaos_answers, clean_answers, strict=True)
    ):
        if strip_provenance(chaotic) != strip_provenance(clean):
            mismatches += 1
            if mismatches <= max_reported:
                failures.append(
                    f"answer {index} diverged: chaos={chaotic!r} "
                    f"clean={clean!r}"
                )
    if mismatches:
        failures.append(
            f"{mismatches}/{len(chaos_answers)} answers diverged from "
            "the fault-free oracle"
        )
    return failures


def verify_reload_contract(
    chaos_reload: dict, clean_reload: dict,
    keys: tuple[str, ...] = ("ok", "version", "collective", "tag"),
) -> list[str]:
    """Reload responses compare on the version contract only (a wedged
    worker legitimately sits out the chaos commit)."""
    return [
        f"reload {key!r} diverged: chaos={chaos_reload.get(key)!r} "
        f"clean={clean_reload.get(key)!r}"
        for key in keys
        if chaos_reload.get(key) != clean_reload.get(key)
    ]


__all__ = [
    "CHAOS_KINDS",
    "PROVENANCE_FIELDS",
    "ChaosEvent",
    "FleetChaosPlan",
    "build_plan",
    "strip_provenance",
    "verify_bit_identity",
    "verify_chaos_invariants",
    "verify_reload_contract",
]
