"""Exact discrete-event execution of per-rank message-passing programs.

A *program* is a generator: it yields operation objects and receives
operation results back (received payloads, request handles). The engine
advances one virtual clock per rank, matches messages FIFO per
``(src, dst, tag)`` channel (MPI's non-overtaking rule), and models
contention at each node's NIC.

Timing model (all parameters from :class:`repro.machine.MachineModel`):

* every operation charges ``cpu_overhead`` on the issuing rank,
* intra-node message: sender occupied ``nbytes * beta_intra`` (memory
  copy); payload available at the receiver ``alpha_intra +
  nbytes * beta_intra`` after the copy starts,
* inter-node message: the source NIC is occupied for ``nbytes *
  nic_gap`` starting no earlier than both the sender reaching the send
  and the NIC being free; the wire adds ``alpha_inter`` latency and
  sustains ``beta_inter`` per byte; the destination NIC serialises the
  drain at ``nic_gap`` per byte,
* a blocking ``Send`` returns once the message is fully injected
  (eager protocol — no rendezvous),
* ``Recv`` completes at ``max(time recv posted, payload arrival)``.

The scheduler always resumes the runnable rank with the smallest
virtual clock, so shared-resource (NIC) claims happen in near time
order and the makespan is deterministic for a fixed machine, program
set and seed.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable, Generator, Iterable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.utils.rng import SeedLike, as_generator

#: default horizon for _advance — hoisted so the signature has no
#: call in a default argument (ruff B008)
_INF = float("inf")


class DeadlockError(RuntimeError):
    """Raised when every unfinished rank is blocked on a message."""


# ----------------------------------------------------------------------
# Operations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Send:
    """Blocking eager send of ``nbytes`` to ``dst`` (returns when injected)."""

    dst: int
    nbytes: int
    payload: Any = None
    tag: int = 0


@dataclass(frozen=True)
class Recv:
    """Blocking receive from ``src``; the yield evaluates to the payload."""

    src: int
    tag: int = 0


@dataclass(frozen=True)
class Isend:
    """Non-blocking send; the yield evaluates to a request handle."""

    dst: int
    nbytes: int
    payload: Any = None
    tag: int = 0


@dataclass(frozen=True)
class Irecv:
    """Non-blocking receive; the yield evaluates to a request handle."""

    src: int
    tag: int = 0


@dataclass(frozen=True)
class Wait:
    """Wait for a request handle; for Irecv the yield evaluates to the payload."""

    handle: int


@dataclass(frozen=True)
class Compute:
    """Occupy the rank for ``seconds`` of local work."""

    seconds: float


@dataclass(frozen=True)
class Reduce:
    """Occupy the rank for the machine's local-reduction cost of ``nbytes``."""

    nbytes: int


Op = Send | Recv | Isend | Irecv | Wait | Compute | Reduce
Program = Generator[Op, Any, Any]
ProgramFactory = Callable[[int], Program]


# ----------------------------------------------------------------------
# Engine internals
# ----------------------------------------------------------------------
@dataclass
class _Message:
    arrival: float
    payload: Any


@dataclass
class _Request:
    kind: str  # "send" | "recv"
    channel: tuple[int, int, int] | None = None
    complete_at: float | None = None  # for sends
    message: _Message | None = None  # for matched recvs


@dataclass
class SimResult:
    """Outcome of one engine run."""

    #: per-rank completion times (seconds of virtual time)
    finish_times: np.ndarray
    #: ``max(finish_times)`` — the collective's completion time
    makespan: float
    #: generator return value of each rank's program
    outputs: list[Any]
    #: total messages sent
    num_messages: int
    #: total payload bytes sent
    total_bytes: int


@dataclass
class _RankState:
    program: Program
    clock: float = 0.0
    done: bool = False
    output: Any = None
    send_back: Any = None  # value to send into the generator on resume
    blocked_channel: tuple[int, int, int] | None = None
    blocked_wait: int | None = None
    #: operation to retry on resume instead of advancing the generator
    pending_op: Any = None
    requests: dict[int, _Request] = field(default_factory=dict)
    next_handle: int = 0


class Engine:
    """Runs one program per rank on a machine model.

    Parameters
    ----------
    machine:
        Calibrated machine model providing all cost parameters.
    topology:
        Placement of ranks onto nodes.
    rng:
        Seed or generator for per-message noise; ``None`` disables noise
        entirely (exact deterministic costs), which is what the fastsim
        equivalence tests use.
    """

    def __init__(
        self,
        machine: MachineModel,
        topology: Topology,
        rng: SeedLike = None,
    ) -> None:
        machine.validate_shape(topology.num_nodes, topology.ppn)
        self.machine = machine
        self.topology = topology
        self._rng = as_generator(rng) if rng is not None else None

    # ------------------------------------------------------------------
    def run(self, programs: Iterable[ProgramFactory] | ProgramFactory) -> SimResult:
        """Execute the programs and return completion times and outputs.

        ``programs`` is either a single factory applied to every rank or
        one factory per rank; each factory is called with the rank index.
        """
        topo = self.topology
        if callable(programs):
            factories = [programs] * topo.size
        else:
            factories = list(programs)
            if len(factories) != topo.size:
                raise ValueError(
                    f"got {len(factories)} programs for {topo.size} ranks"
                )

        # Full-duplex NICs: injection and drain directions are
        # independent resources, matching fastsim's round model.
        self._nic_inject_free = np.zeros(topo.num_nodes)
        self._nic_drain_free = np.zeros(topo.num_nodes)
        self._channels: dict[tuple[int, int, int], deque[_Message]] = {}
        self._recv_waiters: dict[tuple[int, int, int], list[int]] = {}
        self._num_messages = 0
        self._total_bytes = 0

        states = [_RankState(program=factories[r](r)) for r in range(topo.size)]
        self._states = states

        # Priority queue of runnable ranks ordered by virtual clock. A
        # rank appears at most once as runnable; blocked ranks re-enter
        # when their channel receives a message.
        ready: list[tuple[float, int]] = [(0.0, r) for r in range(topo.size)]
        heapq.heapify(ready)

        while ready:
            _, rank = heapq.heappop(ready)
            state = states[rank]
            if state.done:
                continue
            # Preemption horizon: never let one rank execute operations
            # (and claim shared NIC slots) past the virtual time of the
            # next-soonest runnable rank, so resource claims happen in
            # near time order.
            horizon = ready[0][0] if ready else float("inf")
            woken = self._advance(rank, state, horizon)
            for other in woken:
                heapq.heappush(ready, (states[other].clock, other))
            if not state.done and state.blocked_channel is None and (
                state.blocked_wait is None
            ):
                heapq.heappush(ready, (state.clock, rank))

        unfinished = [r for r, s in enumerate(states) if not s.done]
        if unfinished:
            detail = ", ".join(
                f"rank {r} waiting on {states[r].blocked_channel or states[r].blocked_wait}"
                for r in unfinished[:8]
            )
            raise DeadlockError(
                f"{len(unfinished)} rank(s) blocked forever: {detail}"
            )

        finish = np.array([s.clock for s in states])
        return SimResult(
            finish_times=finish,
            makespan=float(finish.max(initial=0.0)),
            outputs=[s.output for s in states],
            num_messages=self._num_messages,
            total_bytes=self._total_bytes,
        )

    # ------------------------------------------------------------------
    def _advance(
        self, rank: int, state: _RankState, horizon: float = _INF
    ) -> list[int]:
        """Run ``rank`` until it finishes, blocks, or passes ``horizon``.

        Returns the ranks woken by messages sent along the way.
        """
        woken: list[int] = []
        while True:
            if state.clock > horizon:
                return woken  # preempted; caller requeues us
            if state.pending_op is not None:
                op = state.pending_op
                state.pending_op = None
            else:
                try:
                    op = state.program.send(state.send_back)
                except StopIteration as stop:
                    state.done = True
                    state.output = stop.value
                    return woken
                state.send_back = None

            if isinstance(op, Compute):
                if op.seconds < 0:
                    raise ValueError(f"negative compute time {op.seconds}")
                state.clock += self._noisy(op.seconds)
            elif isinstance(op, Reduce):
                state.clock += self._noisy(float(self.machine.reduce_time(op.nbytes)))
            elif isinstance(op, Send):
                complete, woke = self._do_send(rank, state.clock, op)
                state.clock = complete
                woken.extend(woke)
            elif isinstance(op, Isend):
                complete, woke = self._do_send(rank, state.clock, op)
                woken.extend(woke)
                handle = state.next_handle
                state.next_handle += 1
                state.requests[handle] = _Request(kind="send", complete_at=complete)
                state.clock += self.machine.cpu_overhead
                state.send_back = handle
            elif isinstance(op, Recv):
                channel = (op.src, rank, op.tag)
                self._validate_peer(op.src)
                queue = self._channels.get(channel)
                if queue:
                    message = queue.popleft()
                    state.clock = (
                        max(state.clock, message.arrival) + self.machine.cpu_overhead
                    )
                    state.send_back = message.payload
                else:
                    state.blocked_channel = channel
                    self._recv_waiters.setdefault(channel, []).append(rank)
                    state.pending_op = op  # retry the Recv on resume
                    return woken
            elif isinstance(op, Irecv):
                self._validate_peer(op.src)
                handle = state.next_handle
                state.next_handle += 1
                state.requests[handle] = _Request(
                    kind="recv", channel=(op.src, rank, op.tag)
                )
                state.send_back = handle
            elif isinstance(op, Wait):
                request = state.requests.get(op.handle)
                if request is None:
                    raise ValueError(f"rank {rank}: unknown request {op.handle}")
                if request.kind == "send":
                    state.clock = max(state.clock, request.complete_at or 0.0)
                    del state.requests[op.handle]
                else:
                    channel = request.channel
                    assert channel is not None
                    queue = self._channels.get(channel)
                    if queue:
                        message = queue.popleft()
                        state.clock = (
                            max(state.clock, message.arrival)
                            + self.machine.cpu_overhead
                        )
                        state.send_back = message.payload
                        del state.requests[op.handle]
                    else:
                        state.blocked_channel = channel
                        state.blocked_wait = op.handle
                        self._recv_waiters.setdefault(channel, []).append(rank)
                        state.pending_op = op  # retry the Wait on resume
                        return woken
            else:
                raise TypeError(f"rank {rank} yielded non-operation {op!r}")

    # ------------------------------------------------------------------
    def _do_send(
        self, rank: int, now: float, op: Send | Isend
    ) -> tuple[float, list[int]]:
        """Execute a send; return (sender completion time, woken ranks)."""
        if op.nbytes < 0:
            raise ValueError(f"negative message size {op.nbytes}")
        self._validate_peer(op.dst)
        if op.dst == rank:
            raise ValueError(f"rank {rank} sending to itself")
        machine = self.machine
        topo = self.topology
        nbytes = op.nbytes
        start = now + machine.cpu_overhead

        if topo.same_node(rank, op.dst):
            copy = self._noisy(nbytes * machine.beta_intra)
            inject_end = start + copy
            arrival = start + self._noisy(machine.alpha_intra) + copy
        else:
            src_node = topo.node_of(rank)
            dst_node = topo.node_of(op.dst)
            inject_start = max(start, self._nic_inject_free[src_node])
            inject_end = inject_start + self._noisy(nbytes * machine.nic_gap)
            self._nic_inject_free[src_node] = inject_end
            wire_last_byte = inject_start + self._noisy(
                machine.alpha_inter + nbytes * machine.beta_inter
            )
            drain_start = max(
                inject_start + machine.alpha_inter,
                self._nic_drain_free[dst_node],
            )
            arrival = max(drain_start + nbytes * machine.nic_gap, wire_last_byte)
            self._nic_drain_free[dst_node] = arrival

        channel = (rank, op.dst, op.tag)
        self._channels.setdefault(channel, deque()).append(
            _Message(arrival=arrival, payload=op.payload)
        )
        self._num_messages += 1
        self._total_bytes += nbytes

        woken: list[int] = []
        waiters = self._recv_waiters.get(channel)
        if waiters:
            other = waiters.pop(0)
            other_state = self._states[other]
            other_state.blocked_channel = None
            other_state.blocked_wait = None
            woken.append(other)
        return inject_end, woken

    def _noisy(self, duration: float) -> float:
        if self._rng is None:
            return duration
        return float(self.machine.noise.sample(duration, self._rng))

    def _validate_peer(self, peer: int) -> None:
        if not 0 <= peer < self.topology.size:
            raise ValueError(
                f"peer {peer} out of range 0..{self.topology.size - 1}"
            )


