"""Vectorised cost evaluators for the structural families of collectives.

Every collective algorithm in :mod:`repro.collectives` is, structurally,
one of three things (or a composition of them):

* a **linear sweep** — one rank sends to / receives from a list of peers
  sequentially (basic linear broadcast / reduce / gather),
* a **segmented pipelined tree** — data cut into segments flowing down
  (broadcast) or up (reduce) a tree, with every rank forwarding each
  segment to its children in a fixed order (chain, pipeline, binary,
  binomial, k-nomial, split-binary),
* a sequence of **synchronous rounds** — in round ``k`` every rank
  exchanges a message with one peer and possibly reduces (recursive
  doubling, ring, Bruck, pairwise exchange).

The evaluators below compute the same dependency recurrences the exact
engine (:mod:`repro.simulator.engine`) resolves event by event, but
vectorised with NumPy over the segment (resp. rank) dimension. The key
identity for pipelines: with per-segment batch busy time ``B[s]`` and
upstream availability ``ready[s]``, the completion of segment ``s`` is ::

    end[s] = max(end[s-1], ready[s]) + B[s]
           = C[s] + max_{j<=s} (ready[j] - C[j-1]),   C = cumsum(B)

a running maximum, i.e. ``np.maximum.accumulate``.

NIC contention is approximated *structurally*: each edge's effective
per-byte rate is inflated by the number of distinct ranks on the source
(resp. destination) node that send (resp. receive) inter-node traffic
concurrently in the same phase. The exact engine resolves the true
interleaving; the agreement between the two tiers is covered by
``tests/simulator/test_fastsim_vs_engine.py`` and the A1 ablation bench.

All evaluators return *deterministic* base times; measurement noise is
applied per repetition by the benchmark harness (:mod:`repro.bench`).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.machine.model import MachineModel
from repro.machine.topology import Topology

__all__ = [
    "linear_time",
    "pipeline_tree_time",
    "round_time",
    "Round",
    "segment_sizes",
    "contention_counts",
]


def segment_sizes(nbytes: int, seg_bytes: int | None) -> np.ndarray:
    """Split ``nbytes`` into segments of ``seg_bytes`` (last may be short).

    ``seg_bytes=None`` (or a segment at least as large as the message)
    yields a single segment. A zero-byte message still produces one
    zero-byte segment, because MPI collectives on empty buffers still
    synchronise.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if seg_bytes is not None and seg_bytes <= 0:
        raise ValueError(f"seg_bytes must be positive, got {seg_bytes}")
    if nbytes == 0:
        return np.zeros(1, dtype=np.int64)
    if seg_bytes is None or seg_bytes >= nbytes:
        return np.array([nbytes], dtype=np.int64)
    nfull, rest = divmod(nbytes, seg_bytes)
    sizes = np.full(nfull + (1 if rest else 0), seg_bytes, dtype=np.int64)
    if rest:
        sizes[-1] = rest
    return sizes


def contention_counts(
    topo: Topology, parent: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-node counts of concurrently injecting / draining ranks.

    ``parent[r]`` is rank ``r``'s parent in a tree (-1 for the root).
    Returns ``(inject_count, drain_count)`` per node: the number of
    distinct ranks on each node that have at least one inter-node child
    (they inject) and the number with an inter-node parent (they drain).
    Counts are clipped to at least 1 so they can be used directly as
    rate multipliers.
    """
    node = topo.node_map
    ranks = np.arange(topo.size)
    has_parent = parent >= 0
    inter_edge = has_parent & (node[parent.clip(min=0)] != node[ranks])
    drain = np.bincount(node[ranks[inter_edge]], minlength=topo.num_nodes)
    # A rank injects if at least one of its children is on another node.
    injecting_parents = np.unique(parent[inter_edge]) if inter_edge.any() else []
    inject = np.zeros(topo.num_nodes, dtype=np.int64)
    if len(injecting_parents):
        inject = np.bincount(
            node[np.asarray(injecting_parents)], minlength=topo.num_nodes
        )
    return inject.clip(min=1), drain.clip(min=1)


@dataclass(frozen=True)
class _EdgeCost:
    """Per-byte and fixed costs of one tree edge under contention."""

    busy_per_byte: float  # sender occupancy
    wire_per_byte: float  # end-to-end per-byte rate
    latency: float
    overhead: float

    def busy(self, sizes: np.ndarray) -> np.ndarray:
        return self.overhead + sizes * self.busy_per_byte

    def in_flight(self, sizes: np.ndarray) -> np.ndarray:
        """Time between injection end and payload arrival at the peer.

        Excludes the receiver's cpu overhead: that is charged to the
        *receiving rank's* occupancy (it serialises with its own sends),
        not to the wire.
        """
        extra = sizes * np.maximum(self.wire_per_byte - self.busy_per_byte, 0.0)
        return self.latency + extra


def _edge_cost(
    machine: MachineModel,
    topo: Topology,
    src: int,
    dst: int,
    inject_count: np.ndarray,
    drain_count: np.ndarray,
) -> _EdgeCost:
    if topo.same_node(src, dst):
        return _EdgeCost(
            busy_per_byte=machine.beta_intra,
            wire_per_byte=machine.beta_intra,
            latency=machine.alpha_intra,
            overhead=machine.cpu_overhead,
        )
    inj = machine.nic_gap * inject_count[topo.node_of(src)]
    drain = machine.nic_gap * drain_count[topo.node_of(dst)]
    wire = max(machine.beta_inter, inj, drain)
    return _EdgeCost(
        busy_per_byte=inj,
        wire_per_byte=wire,
        latency=machine.alpha_inter,
        overhead=machine.cpu_overhead,
    )


def _pipeline_scan(
    ready: np.ndarray, batch_busy: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Max-plus scan: completion of each segment batch on one rank.

    ``ready[s]`` is when segment ``s`` becomes available locally,
    ``batch_busy[s]`` the rank's total occupancy to forward it.
    Returns ``(start, end)`` arrays with
    ``end[s] = max(end[s-1], ready[s]) + batch_busy[s]``.
    """
    cum = np.cumsum(batch_busy)
    offset = np.maximum.accumulate(ready - (cum - batch_busy))
    end = cum + offset
    return end - batch_busy, end


def pipeline_tree_time(
    machine: MachineModel,
    topo: Topology,
    parent: Sequence[int] | np.ndarray,
    children: Sequence[Sequence[int]],
    nbytes: int,
    seg_bytes: int | None,
    *,
    reduce_up: bool = False,
    require_spanning: bool = True,
) -> float:
    """Completion time of a segmented tree broadcast (or reduce).

    ``parent``/``children`` describe the tree over all ranks of
    ``topo``; segment ``seg_bytes`` splits the ``nbytes`` payload.
    With ``require_spanning=False`` ranks unreachable from the root are
    treated as non-participants (used by subtree phases of composite
    algorithms such as split-binary broadcast).

    Downward direction (``reduce_up=False``): the root owns all
    segments at t=0; every rank forwards each received segment to its
    children in the given order. Returns the time at which the last
    rank holds the last segment.

    Upward direction (``reduce_up=True``): leaves own their data; every
    parent receives each segment from each child (serialised) and folds
    it into its accumulator at the machine's reduction rate. Returns
    the time the root finishes combining the last segment.
    """
    parent = np.asarray(parent, dtype=np.int64)
    if parent.shape != (topo.size,):
        raise ValueError(
            f"parent array has shape {parent.shape}, expected ({topo.size},)"
        )
    # Convention: parent == -1 marks the root, parent == -2 marks ranks
    # absent from this (sub)tree phase.
    roots = np.flatnonzero(parent == -1)
    if len(roots) != 1:
        raise ValueError(f"tree must have exactly one root, found {len(roots)}")
    root = int(roots[0])
    sizes = segment_sizes(nbytes, seg_bytes)
    nseg = len(sizes)
    inject, drain = contention_counts(topo, parent)

    order = _bfs_order(root, children, topo.size, require_spanning)

    o = machine.cpu_overhead
    if not reduce_up:
        # ready[r] = *arrival* time of each segment at rank r (before
        # the receive overhead, which serialises with r's own sends).
        ready: list[np.ndarray | None] = [None] * topo.size
        ready[root] = np.zeros(nseg)
        finish = np.zeros(topo.size)
        for r in order:
            r_ready = ready[r]
            assert r_ready is not None
            recv_o = 0.0 if r == root else o
            kids = list(children[r])
            if not kids:
                finish[r] = r_ready[-1] + recv_o
                continue
            costs = [_edge_cost(machine, topo, r, c, inject, drain) for c in kids]
            batch_busy = np.full(nseg, recv_o)
            for cost in costs:
                batch_busy += cost.busy(sizes)
            start, end = _pipeline_scan(r_ready, batch_busy)
            finish[r] = end[-1]
            # Child c's copy of segment s arrives when its send (the
            # c-th in the batch) completes plus the in-flight part.
            prefix = np.full(nseg, recv_o)
            for cost, child in zip(costs, kids, strict=True):
                prefix += cost.busy(sizes)
                ready[child] = start + prefix + cost.in_flight(sizes)
        return float(finish.max())

    # Upward (reduce): process leaves first.
    sent: list[np.ndarray | None] = [None] * topo.size  # per-rank send end
    done = np.zeros(topo.size)
    for r in reversed(order):
        kids = list(children[r])
        if kids:
            # Receive from each child per segment, fold with gamma.
            arrive = np.zeros(nseg)
            for c in kids:
                cost = _edge_cost(machine, topo, c, r, inject, drain)
                c_send = sent[c]
                assert c_send is not None
                arrive = np.maximum(arrive, c_send + cost.in_flight(sizes))
            fold = len(kids) * (
                sizes * machine.gamma_reduce + machine.cpu_overhead
            )
            _, combined = _pipeline_scan(arrive, fold)
        else:
            combined = np.zeros(nseg)
        done[r] = combined[-1]
        if parent[r] >= 0:
            cost = _edge_cost(machine, topo, r, int(parent[r]), inject, drain)
            _, send_end = _pipeline_scan(combined, cost.busy(sizes))
            sent[r] = send_end
    return float(done[root])


def _bfs_order(
    root: int,
    children: Sequence[Sequence[int]],
    size: int,
    require_spanning: bool = True,
) -> list[int]:
    order = [root]
    seen = {root}
    head = 0
    while head < len(order):
        r = order[head]
        head += 1
        for c in children[r]:
            if c in seen:
                raise ValueError(f"rank {c} appears twice in the tree")
            seen.add(c)
            order.append(c)
    if require_spanning and len(order) != size:
        missing = size - len(order)
        raise ValueError(f"tree does not span all ranks ({missing} unreachable)")
    return order


@dataclass(frozen=True)
class Round:
    """One synchronous communication round.

    ``srcs[i] -> dsts[i]`` carries ``nbytes[i]`` bytes; after receiving,
    each destination performs ``compute_bytes[i]`` bytes of reduction
    work. Scalars broadcast over the edge dimension.

    ``overlap_compute=True`` models algorithms that pipeline the
    reduction with the transfer (e.g. the segmented ring): the round
    then costs ``max(comm, compute)`` instead of their sum.
    ``extra_seconds`` is an additive per-round overhead (e.g. the
    per-segment message overheads of a segmented exchange).
    """

    srcs: np.ndarray
    dsts: np.ndarray
    nbytes: np.ndarray | int
    compute_bytes: np.ndarray | int = 0
    overlap_compute: bool = False
    extra_seconds: float = 0.0

    @staticmethod
    def make(
        srcs: Sequence[int],
        dsts: Sequence[int],
        nbytes: Sequence[int] | int,
        compute_bytes: Sequence[int] | int = 0,
        *,
        overlap_compute: bool = False,
        extra_seconds: float = 0.0,
    ) -> "Round":
        return Round(
            srcs=np.asarray(srcs, dtype=np.int64),
            dsts=np.asarray(dsts, dtype=np.int64),
            nbytes=np.asarray(nbytes, dtype=np.int64)
            if not np.isscalar(nbytes)
            else int(nbytes),
            compute_bytes=np.asarray(compute_bytes, dtype=np.int64)
            if not np.isscalar(compute_bytes)
            else int(compute_bytes),
            overlap_compute=overlap_compute,
            extra_seconds=extra_seconds,
        )


def round_time(
    machine: MachineModel, topo: Topology, rounds: Sequence[Round]
) -> float:
    """Total time of a sequence of synchronous rounds.

    Each round lasts as long as its slowest edge; edges within a round
    run concurrently but share node NICs (every node's inter-node
    injections serialise at ``nic_gap`` per byte, likewise drains).
    This matches how round-based algorithms (recursive doubling, ring,
    Bruck, pairwise) behave under a single-port model: rank ``r``
    cannot start round ``k+1`` before finishing round ``k``, and in the
    symmetric patterns used here the slowest edge gates everyone.
    """
    node = topo.node_map
    total = 0.0
    for rnd in rounds:
        srcs = np.asarray(rnd.srcs, dtype=np.int64)
        dsts = np.asarray(rnd.dsts, dtype=np.int64)
        if srcs.shape != dsts.shape:
            raise ValueError("srcs and dsts must have the same shape")
        if len(srcs) == 0:
            continue
        nbytes = np.broadcast_to(np.asarray(rnd.nbytes), srcs.shape).astype(float)
        compute = np.broadcast_to(np.asarray(rnd.compute_bytes), srcs.shape)
        src_node = node[srcs]
        dst_node = node[dsts]
        inter = src_node != dst_node

        time = np.empty(len(srcs))
        # Intra-node edges: plain shared-memory copy.
        time[~inter] = machine.alpha_intra + nbytes[~inter] * machine.beta_intra
        if inter.any():
            inj_bytes = np.bincount(
                src_node[inter], weights=nbytes[inter], minlength=topo.num_nodes
            )
            drain_bytes = np.bincount(
                dst_node[inter], weights=nbytes[inter], minlength=topo.num_nodes
            )
            per_edge = np.maximum(
                nbytes[inter] * machine.beta_inter,
                np.maximum(
                    inj_bytes[src_node[inter]], drain_bytes[dst_node[inter]]
                )
                * machine.nic_gap,
            )
            time[inter] = machine.alpha_inter + per_edge
        compute_time = compute * machine.gamma_reduce
        if rnd.overlap_compute:
            time = np.maximum(time, compute_time)
        else:
            time = time + compute_time
        time += 2 * machine.cpu_overhead
        total += float(time.max()) + rnd.extra_seconds
    return total


def linear_time(
    machine: MachineModel,
    topo: Topology,
    root: int,
    peers: Sequence[int],
    nbytes: int,
    *,
    gather: bool = False,
    reduce_at_root: bool = False,
) -> float:
    """Sequential root-centred sweep (basic linear algorithms).

    ``gather=False``: the root sends ``nbytes`` to each peer in order
    (linear broadcast / scatter leg); completion is the last delivery.
    ``gather=True``: each peer sends to the root, which receives them in
    order, optionally folding each into an accumulator
    (``reduce_at_root``) at the machine's reduction rate.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    o = machine.cpu_overhead
    m = float(nbytes)
    if not gather:
        clock = 0.0
        last_delivery = 0.0
        dst_nic_free = np.zeros(topo.num_nodes)
        for dst in peers:
            clock += o
            if topo.same_node(root, dst):
                busy = m * machine.beta_intra
                arrival = clock + machine.alpha_intra + busy
                clock += busy
            else:
                inject_end = clock + m * machine.nic_gap
                dnode = topo.node_of(dst)
                drain_start = max(
                    clock + machine.alpha_inter, dst_nic_free[dnode]
                )
                arrival = max(
                    drain_start + m * machine.nic_gap,
                    clock + machine.alpha_inter + m * machine.beta_inter,
                )
                dst_nic_free[dnode] = arrival
                clock = inject_end
            last_delivery = max(last_delivery, arrival + o)
        return max(clock, last_delivery)

    # Gather direction: peers race to the root's NIC; the root drains
    # them one after another and (optionally) folds each buffer.
    clock = 0.0
    src_nic_free = np.zeros(topo.num_nodes)
    for src in peers:
        if topo.same_node(src, root):
            arrival = o + machine.alpha_intra + m * machine.beta_intra
        else:
            snode = topo.node_of(src)
            inject_start = max(o, src_nic_free[snode])
            src_nic_free[snode] = inject_start + m * machine.nic_gap
            arrival = inject_start + machine.alpha_inter + m * machine.beta_inter
        clock = max(clock, arrival) + o
        if not topo.same_node(src, root):
            clock += m * machine.nic_gap  # root NIC drains serially
        if reduce_at_root:
            clock += m * machine.gamma_reduce
    return clock
