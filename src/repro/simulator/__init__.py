"""Two-tier simulation of MPI point-to-point traffic.

* :mod:`repro.simulator.engine` — an exact discrete-event executor for
  per-rank *programs* (generators yielding Send/Recv/... operations).
  It moves real payloads, so collective schedules can be verified for
  semantic correctness, and models per-node NIC occupancy.
* :mod:`repro.simulator.fastsim` — vectorised evaluators for the three
  structural families all implemented collectives fall into (pipelined
  trees, synchronous rounds, linear sweeps). Used for dataset
  generation at paper scale; validated against the engine in tests.
"""

from repro.simulator.engine import (
    Compute,
    DeadlockError,
    Engine,
    Irecv,
    Isend,
    Recv,
    Reduce,
    Send,
    SimResult,
    Wait,
)
from repro.simulator.fastsim import (
    linear_time,
    pipeline_tree_time,
    round_time,
)

__all__ = [
    "Engine",
    "SimResult",
    "DeadlockError",
    "Send",
    "Recv",
    "Isend",
    "Irecv",
    "Wait",
    "Compute",
    "Reduce",
    "linear_time",
    "pipeline_tree_time",
    "round_time",
]
