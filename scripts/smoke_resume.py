#!/usr/bin/env python3
"""CI smoke test: kill a campaign mid-run, resume it, diff the datasets.

Three phases, mirroring what an operator would live through:

1. **Reference** — generate a dataset uninterrupted (separate cache dir).
2. **Interrupt** — run the same campaign with a fault injected through
   the progress callback (a ``KeyboardInterrupt`` at ~40% progress,
   the ctrl-C case), journalling chunks into the CLI's cache dir.
3. **Resume** — rerun through the real CLI with ``--resume`` and
   verify the result is **bit-identical** to the reference, column by
   column.

Honors ``REPRO_JOBS``, so the CI matrix exercises serial and parallel
resumes. Exits non-zero on any mismatch.
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.core.dataset import PerfDataset  # noqa: E402
from repro.experiments.datasets import generate_dataset  # noqa: E402

DID = os.environ.get("SMOKE_DATASET", "d1")
SEED = 0


class _InjectedInterrupt(KeyboardInterrupt):
    """The fault we inject (subclass so we never swallow a real ^C)."""


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="smoke-resume-"))
    ref_dir = workdir / "reference"
    cli_dir = workdir / "cli-cache"
    jobs = os.environ.get("REPRO_JOBS", "1")
    print(f"workdir={workdir} dataset={DID} REPRO_JOBS={jobs}")

    # -- phase 1: uninterrupted reference -----------------------------
    reference = generate_dataset(DID, "ci", seed=SEED)
    ref_dir.mkdir(parents=True)
    reference.save(ref_dir / "ref")
    print(f"reference: {len(reference)} samples")

    # -- phase 2: interrupted campaign --------------------------------
    stem = cli_dir / f"{DID}-ci-s{SEED}"
    cli_dir.mkdir(parents=True)

    def interrupt_at_40pct(done: int, total: int) -> None:
        if done >= total * 0.4:
            raise _InjectedInterrupt

    try:
        generate_dataset(
            DID, "ci", seed=SEED,
            checkpoint=stem, progress=interrupt_at_40pct,
        )
    except _InjectedInterrupt:
        pass
    else:
        print("FAIL: injected interrupt never fired", file=sys.stderr)
        return 1
    journal = stem.with_name(stem.name + ".journal.json")
    if not journal.exists():
        print(f"FAIL: no chunk journal at {journal}", file=sys.stderr)
        return 1
    print(f"interrupted at ~40%; journal: {journal.stat().st_size} bytes")

    # -- phase 3: resume through the real CLI -------------------------
    os.environ["REPRO_CACHE_DIR"] = str(cli_dir)
    telemetry = workdir / "resume.jsonl"
    code = cli_main([
        "generate", DID, "--scale", "ci", "--seed", str(SEED),
        "--resume", "--telemetry", str(telemetry),
    ])
    if code != 0:
        print(f"FAIL: resume exited {code}", file=sys.stderr)
        return 1
    resumed = PerfDataset.load(stem)

    mismatches = [
        column
        for column in ("config_id", "nodes", "ppn", "msize", "time")
        if not np.array_equal(
            getattr(reference, column), getattr(resumed, column)
        )
    ]
    if mismatches:
        print(f"FAIL: columns differ after resume: {mismatches}",
              file=sys.stderr)
        return 1
    if journal.exists():
        print("FAIL: journal not cleaned up after completion",
              file=sys.stderr)
        return 1

    # the telemetry log must summarize end-to-end
    code = cli_main(["report", "--telemetry", str(telemetry), "--top", "5"])
    if code != 0:
        print(f"FAIL: report exited {code}", file=sys.stderr)
        return 1
    print("OK: interrupted+resumed dataset is bit-identical "
          f"({len(resumed)} samples, REPRO_JOBS={jobs})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
