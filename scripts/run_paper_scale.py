#!/usr/bin/env python3
"""Regenerate every paper exhibit at full (paper) scale.

Writes datasets to results/datasets and rendered exhibits to
results/exhibits-paper. Expect roughly an hour of compute.
"""

import logging
import os
import time
from pathlib import Path

os.environ.setdefault("REPRO_CACHE_DIR", "results/datasets")

logging.basicConfig(level=logging.INFO, format="%(asctime)s %(message)s")

from repro.experiments import figures, tables  # noqa: E402
from repro.experiments.cache import dataset_cached  # noqa: E402
from repro.experiments.datasets import DATASETS, Scale  # noqa: E402

OUT = Path("results/exhibits-paper")
OUT.mkdir(parents=True, exist_ok=True)


def record(name: str, exhibit) -> None:
    text = exhibit.render()
    final = OUT / f"{name}.txt"
    tmp = OUT / f".{name}.txt.{os.getpid()}.tmp"
    tmp.write_text(text + "\n")
    os.replace(tmp, final)
    print(f"--- {name} ---\n{text}\n", flush=True)


def main() -> None:
    t_start = time.time()
    for did in DATASETS:
        t0 = time.time()
        ds = dataset_cached(did, Scale.PAPER)
        print(f"[{time.time() - t_start:7.0f}s] {did}: {len(ds)} samples "
              f"({time.time() - t0:.0f}s)", flush=True)

    record("table1", tables.table1())
    record("table2", tables.table2(Scale.PAPER))
    record("table3", tables.table3(Scale.PAPER))
    record("fig2", figures.figure2(Scale.PAPER))
    for name, driver in (
        ("fig4", figures.figure4),
        ("fig6", figures.figure6),
        ("fig7", figures.figure7),
        ("fig8", figures.figure8),
    ):
        t0 = time.time()
        record(name, driver(Scale.PAPER))
        print(f"[{name} done in {time.time() - t0:.0f}s]", flush=True)
    t0 = time.time()
    record("fig5", figures.figure5(Scale.PAPER))
    print(f"[fig5 done in {time.time() - t0:.0f}s]", flush=True)
    t0 = time.time()
    record("table4a", tables.table4(Scale.PAPER))
    record("table4b", tables.table4(Scale.PAPER, small=True))
    print(f"[table4 done in {time.time() - t0:.0f}s]", flush=True)
    print(f"ALL DONE in {time.time() - t_start:.0f}s", flush=True)


if __name__ == "__main__":
    main()
