#!/usr/bin/env python
"""CI entry point for the repo-aware static analyzer.

Equivalent to ``mpicollpred lint``; kept as a standalone script so the
lint-analysis CI job (and pre-commit hooks) can run it without
installing the package:

    PYTHONPATH=src python scripts/repro_lint.py --fail-on-findings
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
