#!/usr/bin/env python3
"""CI smoke test: the fleet's self-healing under a seeded fault plan.

The acceptance bar of ISSUE 8, end to end through the real CLI:

1. **Plan** — :func:`repro.serve.chaos.build_plan` schedules, purely
   from a seed, a kill of *every* worker in an early stratum, a crash
   of every worker in a late stratum, scattered garbage-output events,
   and one wedge (``SIGSTOP``) placed exactly at the hot-reload index.
2. **Campaign** — boot ``mpicollpred serve --workers 3 --chaos-ops``
   and walk a deterministic 5000-request sequence over one client
   connection, firing each planned fault through the gated ``chaos``
   op at its request index. Before every kill/crash/wedge the driver
   waits for the fleet to report fully healthy again (faults never
   stack, so by construction at most one worker is down at a time —
   the hammer keeps running *through* each outage, which is what
   exercises failover routing and bounded retry). At ``reload_at`` the
   wedge lands and the reload is issued immediately after, putting the
   stopped worker inside the reload's prepare phase.
3. **Oracle** — the same 5000-request sequence (reload included, at
   the same index) against a fault-free twin fleet.
4. **Contract** — zero client-visible failures; every answer
   bit-identical to the twin's (cache-tier provenance fields
   stripped — *which* cache answered may differ after a respawn, the
   answer itself may not); the reload committed exactly once with no
   version skew; ``fleet_worker_restarts_total >= workers``; garbage
   lines were actually skipped; final ``/healthz`` is ``ok``.

Exits non-zero on any violation.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.serve.chaos import (  # noqa: E402
    build_plan,
    strip_provenance,
    verify_bit_identity,
    verify_chaos_invariants,
    verify_reload_contract,
)

SEED = 8
WORKERS = 3
N_REQUESTS = 5000
RULES = "hydra_bcast_rules.conf"
CALL_TIMEOUT_S = "2"
HEAL_TIMEOUT_S = 60.0

#: the deterministic request mix: every index maps to one allocation
NODES = (2, 4, 8, 16, 34)
PPNS = (1, 2, 16, 32)
MSIZES = (64, 1024, 16384, 65536, 262144, 1 << 20)


def request_at(index: int) -> dict:
    return {
        "op": "recommend",
        "collective": "bcast",
        "nodes": NODES[index % len(NODES)],
        "ppn": PPNS[(index // len(NODES)) % len(PPNS)],
        "msize": MSIZES[(index // 7) % len(MSIZES)],
    }


def boot_fleet(chaos_ops: bool) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--workers", str(WORKERS), "--port", "0", "--rules", RULES,
        "--call-timeout", CALL_TIMEOUT_S,
        "--max-worker-restarts", "8", "--queue-depth", "256",
    ]
    if chaos_ops:
        cmd.append("--chaos-ops")
    proc = subprocess.Popen(
        cmd, cwd=ROOT, env=env, stderr=subprocess.PIPE, text=True,
    )
    port = None
    for line in proc.stderr:
        match = re.search(r"listening on [\d.]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        raise RuntimeError("fleet never printed its listening line")
    # keep draining stderr so the child never blocks on a full pipe
    threading.Thread(
        target=lambda: [None for _ in proc.stderr], daemon=True
    ).start()
    return proc, port


class Client:
    def __init__(self, port: int) -> None:
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self.reader = self.sock.makefile("r", encoding="utf-8")

    def ask(self, payload: dict) -> dict:
        self.sock.sendall((json.dumps(payload) + "\n").encode())
        line = self.reader.readline()
        if not line:
            raise ConnectionError("dropped response")
        return json.loads(line)

    def close(self) -> None:
        self.sock.close()


def healthz(port: int) -> dict:
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(
            b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        raw = b""
        while chunk := sock.recv(65536):
            raw += chunk
    return json.loads(raw.partition(b"\r\n\r\n")[2])


def metric_value(port: int, name: str) -> float:
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(
            b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        raw = b""
        while chunk := sock.recv(65536):
            raw += chunk
    for line in raw.partition(b"\r\n\r\n")[2].decode().splitlines():
        if line.startswith(f"{name} "):
            return float(line.split()[-1])
    return 0.0


def wait_for_healthy(port: int, failures: list) -> None:
    """Block until every worker is alive and nothing is restarting.

    This is the pacing rule that makes the campaign total-outage-free
    by construction: a new fault only fires once the previous victim
    has fully rejoined the ring.
    """
    deadline = time.time() + HEAL_TIMEOUT_S
    while time.time() < deadline:
        health = healthz(port)
        if (
            health.get("status") == "ok"
            and health.get("alive") == WORKERS
            and not health.get("restarting")
        ):
            return
        time.sleep(0.05)
    failures.append(f"fleet never re-healed: {healthz(port)}")


def run_campaign(
    port: int, plan, failures: list, chaos: bool
) -> tuple[list[dict], dict]:
    """Walk the request sequence; returns (answers, reload_response)."""
    client = Client(port)
    answers: list[dict] = []
    reload_response: dict = {}
    try:
        for index in range(N_REQUESTS):
            event = plan.at(index) if chaos else None
            if event is not None:
                if event.kind in ("kill", "crash", "wedge"):
                    wait_for_healthy(port, failures)
                fired = client.ask({
                    "op": "chaos", "kind": event.kind,
                    "worker": event.worker,
                })
                if not fired.get("ok"):
                    failures.append({"chaos op failed": fired})
            if index == plan.reload_at:
                # in the chaos campaign the wedge just landed: the
                # reload's prepare phase now meets an unresponsive
                # worker and must commit without it
                reload_response = client.ask(
                    {"op": "reload", "path": RULES}
                )
                if not reload_response.get("ok"):
                    failures.append({"reload failed": reload_response})
            response = client.ask(request_at(index))
            if not response.get("ok"):
                failures.append({f"request {index} failed": response})
            answers.append(strip_provenance(response))
    finally:
        client.close()
    return answers, reload_response


def main() -> int:
    plan = build_plan(SEED, N_REQUESTS, WORKERS)
    print(f"chaos plan: {plan.kinds()} over {N_REQUESTS} requests, "
          f"reload at {plan.reload_at}")
    failures: list = []

    # -- the chaos campaign -------------------------------------------
    proc, port = boot_fleet(chaos_ops=True)
    t0 = time.time()
    try:
        chaos_answers, chaos_reload = run_campaign(
            port, plan, failures, chaos=True
        )
        wait_for_healthy(port, failures)
        restarts = metric_value(port, "fleet_worker_restarts_total")
        garbage = metric_value(port, "fleet_worker_garbage_lines_total")
        failovers = metric_value(port, "fleet_failover_retries_total")
        health = healthz(port)
        admin = Client(port)
        stats = admin.ask({"op": "stats"})["stats"]["fleet"]
        admin.close()
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            failures.append("chaos fleet did not exit on SIGTERM")
            code = proc.wait()
    if code != 0:
        failures.append(f"chaos fleet exited {code} on SIGTERM")
    print(f"chaos campaign: {len(chaos_answers)} answers in "
          f"{time.time() - t0:.1f}s; restarts={restarts:.0f} "
          f"garbage={garbage:.0f} failovers={failovers:.0f}")

    failures.extend(
        verify_chaos_invariants(
            n_workers=WORKERS, restarts=restarts, garbage=garbage,
            health=health, stats=stats,
        )
    )

    # -- the fault-free oracle ----------------------------------------
    proc, port = boot_fleet(chaos_ops=False)
    t0 = time.time()
    try:
        clean_answers, clean_reload = run_campaign(
            port, plan, failures, chaos=False
        )
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            failures.append("oracle fleet did not exit on SIGTERM")
            code = proc.wait()
    if code != 0:
        failures.append(f"oracle fleet exited {code} on SIGTERM")
    print(f"oracle campaign: {len(clean_answers)} answers in "
          f"{time.time() - t0:.1f}s")

    # -- bit-identity -------------------------------------------------
    failures.extend(verify_bit_identity(chaos_answers, clean_answers))
    failures.extend(verify_reload_contract(chaos_reload, clean_reload))

    if failures:
        for failure in failures[:20]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: {N_REQUESTS} requests bit-identical under "
        f"{len(plan.events)} faults ({plan.kinds()}), "
        f"{restarts:.0f} respawns, reload committed once, zero "
        "client-visible failures"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
