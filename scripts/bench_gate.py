#!/usr/bin/env python3
"""CI bench regression gate.

Compares a freshly measured bench report against the committed
``BENCH_<pr>.json`` baseline on the headline metrics
(:data:`repro.obs.gate.GATE_METRICS`) and exits non-zero when any
metric regressed beyond the failure threshold (default 25%; warnings
at 10%). The comparison logic lives in :mod:`repro.obs.gate` where it
is unit-tested — this script is only argument plumbing.

Usage (what ``.github/workflows/ci.yml`` runs)::

    PYTHONPATH=src python scripts/bench_report.py --pr 2 --skip-pytest \
        --out fresh_bench.json
    PYTHONPATH=src python scripts/bench_gate.py --current fresh_bench.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.gate import (  # noqa: E402  (path bootstrap above)
    FAIL_FRAC,
    WARN_FRAC,
    compare_reports,
    gate_verdict,
    latest_committed_report,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--current", type=Path, required=True,
        help="freshly measured bench report (scripts/bench_report.py --out)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline report (default: highest-numbered BENCH_*.json "
        "at the repo root)",
    )
    parser.add_argument("--warn", type=float, default=WARN_FRAC,
                        help="warn threshold as a fraction (default 0.10)")
    parser.add_argument("--fail", type=float, default=FAIL_FRAC,
                        help="fail threshold as a fraction (default 0.25)")
    args = parser.parse_args()

    baseline = args.baseline or latest_committed_report(ROOT)
    print(f"baseline: {baseline}")
    print(f"current:  {args.current}")
    results = compare_reports(
        baseline, args.current, warn_frac=args.warn, fail_frac=args.fail
    )
    passed, text = gate_verdict(results)
    print(text)
    return 0 if passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
