#!/usr/bin/env python3
"""Distil the benchmark suite into a committed BENCH_<pr>.json.

Runs the quick pytest-benchmark subset (everything not marked ``slow``)
with ``--benchmark-json``, extracts the headline medians, adds direct
best-of-N measurements for the metrics the PR acceptance bars track
(prediction latency, kernel speedup, campaign throughput, fastsim
throughput), and writes ``BENCH_<pr>.json`` at the repo root.

Usage::

    PYTHONPATH=src python scripts/bench_report.py --pr 1
    PYTHONPATH=src python scripts/bench_report.py --pr 1 \
        --baseline old_numbers.json   # merge pre-change numbers

The ``baseline`` block of the emitted file holds numbers measured on
the tree *before* the change (captured with the same measurement
loops); ``current`` holds this tree's numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def direct_metrics() -> dict[str, float]:
    """Headline metrics, measured directly (best-of-N, one process)."""
    import numpy as np

    from repro.bench.repro_mpi import BenchmarkSpec
    from repro.bench.runner import DatasetRunner, GridSpec
    from repro.collectives.registry import make_algorithm
    from repro.machine.model import NoiseModel
    from repro.machine.topology import Topology
    from repro.machine.zoo import hydra, tiny_testbed
    from repro.ml.boosting import GradientBoostingRegressor
    from repro.mpilib import get_library

    out: dict[str, float] = {}

    # -- booster fit + predict (the paper's XGBoost configuration) ----
    rng = np.random.default_rng(42)
    X = rng.random((2000, 4))
    y = np.exp(rng.normal(size=2000)) * 1e-4
    t0 = time.perf_counter()
    model = GradientBoostingRegressor(n_rounds=200, max_depth=6, rng=0)
    model.fit(X, y)
    out["booster_fit_2000_s"] = time.perf_counter() - t0
    Xq = rng.random((10_000, 4))
    model.predict(Xq)  # warm (compiles the kernel + flat ensemble)
    out["booster_predict_10k_s"] = _best_of(lambda: model.predict(Xq), 7)
    out["booster_predict_10k_recursive_s"] = _best_of(
        lambda: model.predict_recursive(Xq), 3
    )
    out["kernel_speedup_x"] = (
        out["booster_predict_10k_recursive_s"] / out["booster_predict_10k_s"]
    )

    # -- campaign throughput ------------------------------------------
    runner = DatasetRunner(
        tiny_testbed, get_library("Open MPI"),
        BenchmarkSpec(max_nreps=10), seed=3,
    )
    grid = GridSpec(nodes=(2, 4, 8), ppns=(1, 2), msizes=(16, 1024, 65536))
    t0 = time.perf_counter()
    ds = runner.run("bcast", grid, name="bench")
    out["campaign_samples_per_s"] = len(ds) / (time.perf_counter() - t0)

    # -- serving layer: batched/cached vs cold single-request ---------
    from repro.core.tuner import AutoTuner
    from repro.serve import ModelRegistry, PredictionService

    library = get_library("Open MPI")
    tuner = AutoTuner(
        tiny_testbed, library, "bcast",
        learner="KNN", bench_spec=BenchmarkSpec(max_nreps=5), seed=7,
    )
    tuner.benchmark(
        GridSpec(nodes=(2, 4, 8), ppns=(1, 2), msizes=(64, 4096, 262144))
    )
    tuner.train()
    queries = [
        (n, p, m)
        for n in (2, 4, 6, 8)
        for p in (1, 2)
        for m in (0, 64, 512, 4096, 32768, 262144, 1 << 20, 4 << 20)
    ]
    assert len(queries) == 64
    registry = ModelRegistry(tiny_testbed, library)
    registry.publish(tuner.servable(), tag="bench")
    instances = [("bcast", n, p, m) for n, p, m in queries]

    def cold_serial():
        for n, p, m in queries:
            tuner.recommend(n, p, m)

    def batch_cold():
        PredictionService(registry).recommend_many(instances)

    warm = PredictionService(registry)
    warm.recommend_many(instances)
    out["serve_cold_64_s"] = _best_of(cold_serial, 3)
    out["serve_batch64_s"] = _best_of(batch_cold, 5)
    out["serve_cached_64_s"] = _best_of(
        lambda: warm.recommend_many(instances), 7
    )
    out["serve_batch64_speedup_x"] = (
        out["serve_cold_64_s"] / out["serve_batch64_s"]
    )
    out["serve_cached_speedup_x"] = (
        out["serve_cold_64_s"] / out["serve_cached_64_s"]
    )

    # -- compiled decision tables vs the all-L1-hit cached path -------
    # measured against a rules-backed registry: the tuner's exported
    # rules table covers every message size, so all 64 queries serve
    # from the L0 flat lookup (the selector grid covers only 18)
    with tempfile.TemporaryDirectory() as tmp:
        rules_path = Path(tmp) / "bcast.conf"
        tuner.write_rules(str(rules_path), nodes=8, ppn=2)
        rules_registry = ModelRegistry(tiny_testbed, library)
        rules_registry.load_rules(rules_path)
    compiled = PredictionService(rules_registry, compiled=True)
    first = compiled.recommend_many(instances)
    assert all(rec.compiled for rec in first)
    out["serve_compiled_64_s"] = _best_of(
        lambda: compiled.recommend_many(instances), 30
    )
    out["serve_compiled_speedup_x"] = (
        out["serve_cached_64_s"] / out["serve_compiled_64_s"]
    )

    # -- fast-tier simulator throughput -------------------------------
    quiet = hydra.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))
    algo = make_algorithm("bcast", "chain", segsize=4096, chains=4)
    topo = Topology(36, 32)
    out["fastsim_chain_eval_s"] = _best_of(
        lambda: algo.base_time(quiet, topo, 4 << 20), 5
    )

    out.update(fleet_metrics(tuner))
    out.update(retrain_metrics())
    return out


def fleet_metrics(tuner) -> dict[str, float]:
    """Multi-worker socket fleet under concurrent clients.

    Sized to the machine: one worker per two cores (min 2) and twice as
    many client threads as workers, so the front-end loop, the worker
    processes and the client side together saturate the available
    cores. Reported client-side: requests/s over the timed window and
    the p99 round-trip latency — then the same hammer again with one
    worker SIGKILLed ~0.3 s in (``fleet_degraded_req_per_s``): the
    supervisor respawns it and failover routing keeps every response
    flowing, so the metric captures self-healing throughput, not
    availability (any dropped response still fails the run).
    """
    import os
    import signal
    import threading

    from repro.serve.fleet import FleetSpec, FleetThread, client_request

    cores = os.cpu_count() or 2
    workers = max(2, min(4, cores // 2))
    clients = workers * 2
    per_client = 250
    out: dict[str, float] = {}

    with tempfile.TemporaryDirectory() as tmp:
        rules_path = Path(tmp) / "bcast.conf"
        tuner.write_rules(str(rules_path), nodes=8, ppn=2)
        spec = FleetSpec(rules=(str(rules_path),), workers=workers)
        with FleetThread(spec) as fleet:
            keys = [
                (n, p, m)
                for n in (2, 4, 6, 8)
                for p in (1, 2)
                for m in (64, 4096, 262144, 1 << 20)
            ]
            # warm every worker's compiled tier + L1 through the socket
            client_request("127.0.0.1", fleet.port, [
                {"op": "recommend", "collective": "bcast",
                 "nodes": n, "ppn": p, "msize": m}
                for n, p, m in keys
            ])

            def hammer(seed: int, mine: list[float]) -> None:
                import socket

                with socket.create_connection(
                    ("127.0.0.1", fleet.port), timeout=60
                ) as sock:
                    reader = sock.makefile("r", encoding="utf-8")
                    for i in range(per_client):
                        n, p, m = keys[(seed + i) % len(keys)]
                        payload = json.dumps({
                            "op": "recommend", "collective": "bcast",
                            "nodes": n, "ppn": p, "msize": m,
                        }) + "\n"
                        t0 = time.perf_counter()
                        sock.sendall(payload.encode())
                        line = reader.readline()
                        if not line:
                            raise ConnectionError("fleet dropped a response")
                        response = json.loads(line)
                        if not response.get("ok"):
                            raise AssertionError(
                                f"fleet failed a request: {response}"
                            )
                        mine.append(time.perf_counter() - t0)

            def run_round(mid_round=None) -> tuple[float, list[float]]:
                latencies: list[list[float]] = []
                threads = []
                for seed in range(clients):
                    mine: list[float] = []
                    latencies.append(mine)
                    threads.append(
                        threading.Thread(target=hammer, args=(seed, mine))
                    )
                t0 = time.perf_counter()
                for thread in threads:
                    thread.start()
                if mid_round is not None:
                    time.sleep(0.3)
                    mid_round()
                for thread in threads:
                    thread.join()
                elapsed = time.perf_counter() - t0
                flat = sorted(lat for per in latencies for lat in per)
                assert len(flat) == clients * per_client
                return elapsed, flat

            elapsed, flat = run_round()
            out["fleet_workers"] = float(workers)
            out["fleet_req_per_s"] = len(flat) / elapsed
            out["fleet_p99_us"] = flat[int(len(flat) * 0.99)] * 1e6

            # degraded throughput: SIGKILL one worker mid-hammer; the
            # supervisor respawns it and failover keeps every response
            # flowing (a failed or dropped response fails the bench)
            victim = fleet.worker_pids()[0]
            elapsed, flat = run_round(
                mid_round=lambda: os.kill(victim, signal.SIGKILL)
            )
            out["fleet_degraded_req_per_s"] = len(flat) / elapsed
    return out


def retrain_metrics() -> dict[str, float]:
    """Closed-loop retrain cost: active sampling vs naive full refit.

    Reproduces the ISSUE-10 acceptance scenario deterministically: a
    GAM selector trained on the tiny testbed serves a traffic mix whose
    hot path (the dominant chosen algorithm family) silently slows down
    2x. The feedback log picks up the drift, and the retrainer refits —
    once with active sampling (measure only instances where the
    analytical prior calibrated on feedback disagrees with the learned
    model) and once exhaustively. ``retrain_budget_frac`` is the gated
    headline: measured samples / full-grid samples, which must stay at
    most half the naive refit while final selection agreement against
    the shifted oracle matches the exhaustive run.
    """
    from collections import Counter

    from repro.bench.repro_mpi import BenchmarkSpec
    from repro.bench.runner import GridSpec
    from repro.core.feedback import (
        FeedbackConfig,
        FeedbackLogger,
        WorldShift,
        read_feedback,
    )
    from repro.core.retrain import (
        Retrainer,
        RetrainPolicy,
        selection_agreement,
    )
    from repro.core.tuner import AutoTuner
    from repro.machine.zoo import tiny_testbed
    from repro.mpilib import get_library
    from repro.serve.service import Recommendation

    margin = 0.10
    library = get_library("Open MPI")
    msizes = (64, 1024, 4096, 65536, 262144, 1048576)
    tuner = AutoTuner(
        tiny_testbed, library, "bcast",
        learner="GAM", bench_spec=BenchmarkSpec(max_nreps=30), seed=1,
    )
    base = tuner.benchmark(
        GridSpec(nodes=(2, 4, 8), ppns=(1, 2), msizes=msizes)
    )
    selector = tuner.train()
    configs = library.config_space("bcast").configs
    instances = [
        (n, p, m) for n in (2, 4, 8) for p in (1, 2) for m in msizes
    ]
    chosen = {
        inst: int(selector.select_ids(*inst)[0]) for inst in instances
    }
    dominant = Counter(
        configs[cid].algid for cid in chosen.values() if cid >= 0
    ).most_common(1)[0][0]
    shift = WorldShift(factor=2.0, algids=(dominant,))
    hot = [
        inst for inst in instances
        if configs[chosen[inst]].algid == dominant
    ]

    out: dict[str, float] = {}
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        feedback = FeedbackLogger(
            FeedbackConfig(
                path=str(Path(tmp) / "feedback.jsonl"),
                seed=3, shift=2.0, shift_algids=(dominant,),
            ),
            tiny_testbed, library,
        )
        # traffic mix: every instance once, the drifting hot path 3x
        for n, p, m in list(instances) + 3 * hot:
            feedback.record(Recommendation(
                collective="bcast", nodes=n, ppn=p, msize=m,
                config=configs[chosen[(n, p, m)]],
                source="model", version=1,
            ))
        feedback.close()
        rows = read_feedback(feedback.path)
    out["retrain_feedback_rows"] = float(len(rows))

    active = Retrainer(
        tiny_testbed, library, "bcast", base,
        seed=1, learner="GAM", shift=shift,
        policy=RetrainPolicy(margin=margin),
    )
    assert active.scan(rows), "drift must fire on the 2x hot-path shift"
    result = active.retrain(rows)
    out["retrain_s"] = time.perf_counter() - t0
    out["retrain_budget_frac"] = result.budget_frac
    out["retrain_agreement"] = selection_agreement(
        result.selector, tiny_testbed, library, "bcast", instances,
        shift=shift, margin=margin,
    )

    exhaustive = Retrainer(
        tiny_testbed, library, "bcast", base,
        seed=1, learner="GAM", shift=shift,
        policy=RetrainPolicy(exhaustive=True, margin=margin),
    )
    full = exhaustive.retrain(rows)
    out["retrain_exhaustive_budget_frac"] = full.budget_frac
    out["retrain_exhaustive_agreement"] = selection_agreement(
        full.selector, tiny_testbed, library, "bcast", instances,
        shift=shift, margin=margin,
    )
    return out


def pytest_benchmark_medians() -> dict[str, float]:
    """Medians from the quick pytest-benchmark subset."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as fh:
        json_path = fh.name
    cmd = [
        sys.executable, "-m", "pytest", "benchmarks", "-q",
        "-m", "not slow", f"--benchmark-json={json_path}",
    ]
    proc = subprocess.run(cmd, cwd=ROOT, capture_output=True, text=True)
    if proc.returncode != 0:
        print(proc.stdout[-4000:], file=sys.stderr)
        raise SystemExit("benchmark suite failed")
    data = json.loads(Path(json_path).read_text())
    return {
        bench["name"]: bench["stats"]["median"]
        for bench in data.get("benchmarks", [])
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pr", type=int, required=True)
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="JSON of pre-change numbers to embed as the baseline block",
    )
    parser.add_argument(
        "--skip-pytest", action="store_true",
        help="only the direct metrics (faster; used by CI smoke runs)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the report here instead of BENCH_<pr>.json at the "
        "repo root (used by the CI regression gate)",
    )
    args = parser.parse_args()

    report: dict = {"pr": args.pr, "current": direct_metrics()}
    if not args.skip_pytest:
        report["pytest_benchmark_medians_s"] = pytest_benchmark_medians()
    if args.baseline is not None:
        report["baseline"] = json.loads(args.baseline.read_text())

    out_path = args.out if args.out is not None else ROOT / f"BENCH_{args.pr}.json"
    existing = {}
    if out_path.exists():
        existing = json.loads(out_path.read_text())
    if "baseline" in existing and "baseline" not in report:
        report["baseline"] = existing["baseline"]  # keep recorded baseline
    tmp_path = out_path.with_name(f".{out_path.name}.{os.getpid()}.tmp")
    tmp_path.write_text(json.dumps(report, indent=2) + "\n")
    os.replace(tmp_path, out_path)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {out_path}")


if __name__ == "__main__":
    main()
