#!/usr/bin/env python3
"""CI chaos smoke: run a campaign under fault injection, kill it
mid-flight, resume it, and check the learned selections survive.

Four phases (the fault-injected sibling of ``smoke_resume.py``):

1. **Oracle** — generate the dataset fault-free.
2. **Chaos reference** — same campaign under ``FaultSpec.uniform``
   fault injection (stragglers, jitter, lost observations, chunk
   crashes, torn journal writes), uninterrupted.
3. **Interrupt + resume** — rerun the chaos campaign, kill it at ~40%
   via the progress callback, then resume through the real CLI
   (``generate --chaos --resume``) and verify the result is
   **bit-identical** to the chaos reference, column by column.
4. **Selection divergence** — train one selector per dataset and
   require the selections to agree on at least ``SMOKE_CHAOS_TOL``
   (default 95%) of the instance grid. A differing pick still counts
   as agreement when the oracle model rates it within
   ``SMOKE_CHAOS_TIE`` (default 2%) of its own best — at a 5% fault
   rate the only flips we accept are near-ties, never real
   regressions.

Honors ``REPRO_JOBS``; exits non-zero on any violation.
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.bench.faults import FaultSpec  # noqa: E402
from repro.cli import main as cli_main  # noqa: E402
from repro.core.dataset import PerfDataset  # noqa: E402
from repro.core.selector import AlgorithmSelector  # noqa: E402
from repro.experiments.datasets import generate_dataset  # noqa: E402
from repro.ml import KNNRegressor  # noqa: E402

DID = os.environ.get("SMOKE_DATASET", "d1")
SEED = 0
RATE = float(os.environ.get("SMOKE_CHAOS_RATE", "0.05"))
TOL = float(os.environ.get("SMOKE_CHAOS_TOL", "0.95"))
TIE = float(os.environ.get("SMOKE_CHAOS_TIE", "0.02"))


class _InjectedInterrupt(KeyboardInterrupt):
    """The crash we inject (subclass so we never swallow a real ^C)."""


def fit(dataset: PerfDataset) -> AlgorithmSelector:
    selector = AlgorithmSelector(lambda: KNNRegressor(), min_samples=8)
    return selector.fit(dataset)


def agreement_rate(oracle: PerfDataset, chaos: PerfDataset) -> float:
    """Fraction of grid cells whose selection survives the faults.

    A cell agrees when both selectors pick the same configuration, or
    when the chaos pick is a near-tie: the *oracle* model rates it
    within ``TIE`` of its own best prediction.
    """
    mesh = oracle.instances()
    n, p, m = mesh[:, 0], mesh[:, 1], mesh[:, 2]
    times_oracle = fit(oracle).predict_times(n, p, m)
    ids_oracle = np.argmin(times_oracle, axis=1)
    ids_chaos = fit(chaos).select_ids(n, p, m)
    best = times_oracle[np.arange(len(mesh)), ids_oracle]
    picked = times_oracle[np.arange(len(mesh)), ids_chaos]
    ok = (ids_chaos == ids_oracle) | (picked <= best * (1.0 + TIE))
    return float(np.mean(ok))


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="smoke-chaos-"))
    cli_dir = workdir / "cli-cache"
    cli_dir.mkdir(parents=True)
    jobs = os.environ.get("REPRO_JOBS", "1")
    faults = FaultSpec.uniform(RATE, seed=SEED)
    print(f"workdir={workdir} dataset={DID} rate={RATE} REPRO_JOBS={jobs}")

    # -- phase 1: fault-free oracle -----------------------------------
    oracle = generate_dataset(DID, "ci", seed=SEED)
    print(f"oracle: {len(oracle)} samples")

    # -- phase 2: uninterrupted chaos reference -----------------------
    reference = generate_dataset(DID, "ci", seed=SEED, faults=faults)
    reference.validate()  # faults must never leak NaN/negative rows
    print(f"chaos reference: {len(reference)} samples")

    # -- phase 3: interrupt mid-campaign, resume through the CLI ------
    stem = cli_dir / f"{DID}-ci-s{SEED}"

    def interrupt_at_40pct(done: int, total: int) -> None:
        if done >= total * 0.4:
            raise _InjectedInterrupt

    try:
        generate_dataset(
            DID, "ci", seed=SEED, faults=faults,
            checkpoint=stem, progress=interrupt_at_40pct,
        )
    except _InjectedInterrupt:
        pass
    else:
        print("FAIL: injected interrupt never fired", file=sys.stderr)
        return 1
    print("interrupted chaos campaign at ~40%")

    os.environ["REPRO_CACHE_DIR"] = str(cli_dir)
    telemetry = workdir / "chaos.jsonl"
    code = cli_main([
        "generate", DID, "--scale", "ci", "--seed", str(SEED),
        "--chaos", str(RATE), "--resume", "--telemetry", str(telemetry),
    ])
    if code != 0:
        print(f"FAIL: chaos resume exited {code}", file=sys.stderr)
        return 1
    resumed = PerfDataset.load(stem)

    mismatches = [
        column
        for column in ("config_id", "nodes", "ppn", "msize", "time")
        if not np.array_equal(
            getattr(reference, column), getattr(resumed, column)
        )
    ]
    if mismatches:
        print(f"FAIL: columns differ after chaos resume: {mismatches}",
              file=sys.stderr)
        return 1
    print(f"chaos resume bit-identical ({len(resumed)} samples)")

    # -- phase 4: selection divergence vs the oracle ------------------
    agreement = agreement_rate(oracle, resumed)
    print(f"argmin agreement with fault-free oracle: {agreement:.1%} "
          f"(ties within {TIE:.0%} count as agreement)")
    if agreement < TOL:
        print(f"FAIL: agreement {agreement:.1%} below tolerance {TOL:.0%}",
              file=sys.stderr)
        return 1

    code = cli_main(["report", "--telemetry", str(telemetry), "--top", "5"])
    if code != 0:
        print(f"FAIL: report exited {code}", file=sys.stderr)
        return 1
    print(f"OK: chaos campaign at {RATE:.0%} fault rate survived "
          f"(REPRO_JOBS={jobs})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
