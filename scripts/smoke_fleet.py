#!/usr/bin/env python3
"""CI smoke test: a real fleet under fire, scraped like Prometheus would.

What an operator's first day with ``mpicollpred serve --workers N``
looks like, end to end through the real CLI entry point:

1. **Boot** — ``python -m repro.cli serve --workers 2 --port 0 --rules
   hydra_bcast_rules.conf`` as a subprocess; parse the listening port
   from its stderr.
2. **Fire** — background client threads hammer ``recommend`` /
   ``recommend_many`` over the socket while the foreground flips the
   live rules back and forth with coordinated ``reload`` requests.
3. **Contract** — zero failed responses, zero dropped connections, no
   response mixing model versions, and every client observes versions
   monotonically (the two-phase barrier at work).
4. **Scrape** — ``curl http://…/metrics`` (urllib fallback when curl is
   absent) must return well-formed Prometheus text containing
   ``serve_compiled_hits_total`` and the request-latency histogram with
   p50/p99/p999.
5. **Shutdown** — SIGTERM must exit 0.

Exits non-zero on any violation.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import signal
import socket
import subprocess
import sys
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

RULES = ("hydra_bcast_rules.conf", "quickstart_rules.conf")
HAMMER_THREADS = 4
RELOAD_ROUNDS = 6

#: every metric line: name, optional {labels}, value
METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" (?:[+-]?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|Inf)|NaN)$"
)


def boot_fleet() -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--workers", "2", "--port", "0", "--rules", RULES[0]],
        cwd=ROOT, env=env, stderr=subprocess.PIPE, text=True,
    )
    port = None
    for line in proc.stderr:
        sys.stderr.write(f"  fleet| {line}")
        match = re.search(r"listening on [\d.]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        raise RuntimeError("fleet never printed its listening line")
    # keep draining stderr so the child never blocks on a full pipe
    threading.Thread(
        target=lambda: [None for _ in proc.stderr], daemon=True
    ).start()
    return proc, port


class Client:
    def __init__(self, port: int) -> None:
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self.reader = self.sock.makefile("r", encoding="utf-8")

    def ask(self, payload: dict) -> dict:
        self.sock.sendall((json.dumps(payload) + "\n").encode())
        line = self.reader.readline()
        if not line:
            raise ConnectionError("dropped response")
        return json.loads(line)

    def close(self) -> None:
        self.sock.close()


def hammer(port: int, seed: int, stop: threading.Event,
           failures: list, versions: list) -> None:
    try:
        client = Client(port)
        n = 0
        while not stop.is_set():
            n += 1
            if n % 4 == 0:
                response = client.ask({
                    "op": "recommend_many",
                    "instances": [
                        {"collective": "bcast", "nodes": 4 << (seed % 3),
                         "ppn": 8, "msize": 1024 * (1 + n % 7)},
                        {"collective": "bcast", "nodes": 16,
                         "ppn": 2 << (seed % 4), "msize": 65536},
                    ],
                })
                if not response.get("ok"):
                    failures.append(response)
                    continue
                batch = {r["version"] for r in response["results"]}
                if len(batch) != 1:
                    failures.append({"mixed-version response": response})
                versions.append(max(batch))
            else:
                response = client.ask({
                    "op": "recommend", "collective": "bcast",
                    "nodes": 2 << (n % 5), "ppn": 1 + seed,
                    "msize": 512 << (n % 8),
                })
                if not response.get("ok"):
                    failures.append(response)
                else:
                    versions.append(response["version"])
        client.close()
    except Exception as exc:
        failures.append(f"{type(exc).__name__}: {exc}")


def scrape_metrics(port: int) -> str:
    url = f"http://127.0.0.1:{port}/metrics"
    curl = shutil.which("curl")
    if curl:
        return subprocess.run(
            [curl, "-sSf", url], check=True, capture_output=True, text=True,
            timeout=60,
        ).stdout
    from urllib.request import urlopen

    with urlopen(url, timeout=60) as response:
        return response.read().decode("utf-8")


def check_metrics(body: str) -> list[str]:
    problems = []
    metric_lines = []
    for line in body.splitlines():
        if not line or line.startswith("#"):
            continue
        if not METRIC_LINE.match(line):
            problems.append(f"malformed metric line: {line!r}")
        metric_lines.append(line)
    if not any(
        line.startswith("serve_compiled_hits_total ")
        and float(line.split()[-1]) > 0
        for line in metric_lines
    ):
        problems.append("no positive serve_compiled_hits_total")
    if not any(
        line.startswith("fleet_request_latency_us_bucket")
        for line in metric_lines
    ):
        problems.append("no fleet_request_latency_us histogram buckets")
    for quantile in ("p50", "p99", "p999"):
        if f"fleet_request_latency_us_{quantile} " not in body:
            problems.append(f"missing latency quantile {quantile}")
    if not body.endswith("# EOF\n"):
        problems.append("scrape does not end with # EOF")
    return problems


def main() -> int:
    proc, port = boot_fleet()
    failures: list = []
    per_client_versions: list[list[int]] = []
    try:
        stop = threading.Event()
        threads = []
        for seed in range(HAMMER_THREADS):
            versions: list[int] = []
            per_client_versions.append(versions)
            thread = threading.Thread(
                target=hammer, args=(port, seed, stop, failures, versions)
            )
            thread.start()
            threads.append(thread)

        admin = Client(port)
        for round_ in range(RELOAD_ROUNDS):
            response = admin.ask(
                {"op": "reload", "path": RULES[round_ % len(RULES)]}
            )
            if not response.get("ok") or response.get("workers") != 2:
                failures.append({"reload failed": response})
        # a rejected reload must not disturb the fleet
        rejected = admin.ask({"op": "reload", "path": "/nonexistent.conf"})
        if rejected.get("ok"):
            failures.append("reload of a nonexistent file claimed ok")
        stop.set()
        for thread in threads:
            thread.join(timeout=60)

        stats = admin.ask({"op": "stats"})
        if not stats.get("ok"):
            failures.append({"stats failed": stats})
        elif not stats["stats"]["fleet"]["versions_consistent"]:
            failures.append({"version skew in stats": stats})
        admin.close()

        total = sum(len(v) for v in per_client_versions)
        print(f"hammered {total} requests across {HAMMER_THREADS} clients, "
              f"{RELOAD_ROUNDS} reloads")
        if total == 0:
            failures.append("hammer threads completed zero requests")
        for versions in per_client_versions:
            if versions != sorted(versions):
                failures.append("client observed versions going backwards")
        if per_client_versions and max(
            (max(v) for v in per_client_versions if v), default=0
        ) <= 1:
            failures.append("reloads never landed mid-traffic")

        body = scrape_metrics(port)
        problems = check_metrics(body)
        failures.extend(problems)
        print(f"scraped {len(body.splitlines())} metric-text lines "
              f"({'curl' if shutil.which('curl') else 'urllib'})")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            failures.append("fleet did not exit on SIGTERM")
            code = proc.wait()
    if code != 0:
        failures.append(f"fleet exited {code} on SIGTERM")

    if failures:
        for failure in failures[:20]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"OK: zero failed responses, no mixed versions, "
          f"metrics scrape well-formed, clean shutdown (exit {code})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
