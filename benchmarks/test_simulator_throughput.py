"""Fast-tier throughput: what makes paper-scale campaigns feasible.

DESIGN.md's claim: the vectorised evaluators compute the same schedule
recurrences the exact engine resolves event by event, but in
milliseconds — a 1152-rank, 1024-segment chain broadcast must evaluate
fast enough that a ~70k-sample campaign takes minutes (>= ~50 evals/s),
and the exact engine must be >100x slower on the same instance (which
is why it is reserved for verification).
"""

import pytest

from repro.collectives.registry import make_algorithm
from repro.machine.model import NoiseModel
from repro.machine.topology import Topology
from repro.machine.zoo import hydra

QUIET = hydra.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))


def test_fastsim_chain_throughput(benchmark):
    algo = make_algorithm("bcast", "chain", segsize=4096, chains=4)
    topo = Topology(36, 32)  # 1152 ranks
    nbytes = 4 << 20  # 1024 segments of 4 KiB
    t = benchmark(algo.base_time, QUIET, topo, nbytes)
    assert t > 0
    # min, not mean: CI runners add scheduler noise that only ever
    # inflates timings, and the claim is about the code's capability.
    assert benchmark.stats["min"] < 0.05, "fast tier too slow for campaigns"


def test_fastsim_round_pattern_throughput(benchmark):
    algo = make_algorithm("allreduce", "ring")
    topo = Topology(36, 32)
    t = benchmark(algo.base_time, QUIET, topo, 1 << 20)
    assert t > 0
    assert benchmark.stats["min"] < 0.2


@pytest.mark.slow
def test_engine_vs_fastsim_cost_gap(benchmark):
    # One exact-engine run of a mid-size instance, to document the gap.
    algo = make_algorithm("bcast", "binomial", segsize=16384)
    topo = Topology(8, 4)
    result = benchmark.pedantic(
        algo.run_exact, args=(QUIET, topo, 1 << 20),
        kwargs={"verify": False}, rounds=1, iterations=1,
    )
    fast_cost_estimate = 1e-3  # the fast tier evaluates this in ~1 ms
    assert benchmark.stats["mean"] > 10 * fast_cost_estimate
    assert result.makespan > 0
