"""Figure 6: best vs default vs predicted — MPI_Allreduce, Intel MPI, Hydra.

Paper finding: Intel MPI's (table-tuned) default is already close to
optimal; the predictor cannot gain much but must keep up — which the
paper counts as evidence of robustness, not failure.
"""

import numpy as np

from repro.experiments.figures import figure6


def test_fig6_allreduce_intel(benchmark, record_exhibit, scale):
    exhibit = benchmark.pedantic(figure6, args=(scale,), rounds=1, iterations=1)
    record_exhibit("fig6", exhibit)
    pred = exhibit.column("norm_predicted")
    default = exhibit.column("norm_default")
    assert np.median(default) < 1.6, "Intel default should be near-optimal"
    assert np.mean(pred) < np.mean(default) * 1.25, "prediction must keep up"
