"""Extension E2: performance-guideline violations (PGMPITuneLib view).

The hard-coded default logic violates self-consistency guidelines
(e.g. allreduce slower than reduce+bcast) that the tuned per-instance
portfolio largely repairs.
"""

from repro.experiments.extensions import guidelines_exhibit


def test_ext_guidelines(benchmark, record_exhibit, scale):
    exhibit = benchmark.pedantic(
        guidelines_exhibit, args=(scale,), rounds=1, iterations=1
    )
    record_exhibit("ext_e2_guidelines", exhibit)
    total_default = sum(row[2] for row in exhibit.rows)
    total_best = sum(row[4] for row in exhibit.rows)
    assert total_default > 0, "the default should violate some guideline"
    assert total_best <= total_default, "tuning must not add violations"
    worst_default = max(row[3] for row in exhibit.rows)
    assert worst_default > 1.5, "violations should be material (>1.5x)"
