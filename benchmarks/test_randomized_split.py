"""The paper's §V randomisation check.

"Of course, we could have fully randomized these datasets … The
results were very similar to the ones we present here." — both split
protocols must give comparable mean speed-ups over the default.
"""

from repro.experiments.extensions import randomized_split


def test_randomized_split(benchmark, record_exhibit, scale):
    exhibit = benchmark.pedantic(
        randomized_split, args=(scale,), rounds=1, iterations=1
    )
    record_exhibit("randomized_split", exhibit)
    for learner, node_speedup, random_speedup in exhibit.rows:
        assert node_speedup > 1.1 and random_speedup > 1.1, learner
        ratio = node_speedup / random_speedup
        assert 0.7 < ratio < 1.4, (
            f"{learner}: protocols diverge ({node_speedup:.2f} vs "
            f"{random_speedup:.2f})"
        )
