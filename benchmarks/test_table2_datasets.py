"""Table II: the benchmark campaign producing datasets d1-d8.

The timed section is one full campaign (d6, the smallest tuning space);
the exhibit assembles the Table II row of every dataset from the shared
cache.
"""

from repro.bench.repro_mpi import BenchmarkSpec
from repro.experiments.datasets import generate_dataset
from repro.experiments.tables import table2


def test_table2_datasets(benchmark, record_exhibit, scale):
    benchmark.pedantic(
        generate_dataset,
        args=("d6", scale, 0),
        kwargs={"spec": BenchmarkSpec(max_nreps=5)},
        rounds=1,
        iterations=1,
    )
    exhibit = table2(scale)
    record_exhibit("table2", exhibit)
    assert len(exhibit.rows) == 8
    # Every dataset hits its Table II algorithm count.
    expected_algorithms = {
        "d1": 8,  # 9 minus the excluded broken algorithm 8
        "d2": 7,
        "d3": 8,
        "d4": 7,
        "d5": 16,
        "d6": 5,
        "d7": 12,
        "d8": 8,
    }
    for row in exhibit.rows:
        assert row[4] == expected_algorithms[row[0]], row
