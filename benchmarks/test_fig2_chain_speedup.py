"""Figure 2: chain-broadcast speed-up over linear (Open MPI, Hydra).

Paper finding to reproduce: at 4 MiB the right (segment size, chains)
configuration is 10-50x faster than the linear broadcast, and the
spread across configurations is itself an order of magnitude — the
motivation for folding algorithm parameters into the selection problem.
"""


from repro.experiments.figures import figure2


def test_fig2_chain_speedup(benchmark, record_exhibit, scale):
    exhibit = benchmark.pedantic(
        figure2, args=(scale,), rounds=1, iterations=1
    )
    record_exhibit("fig2", exhibit)
    speedup = exhibit.column("speedup")
    msize = exhibit.column("msize")
    at_max = speedup[msize == msize.max()]
    assert at_max.max() > 8.0, "large-message chain gains missing"
    assert at_max.max() / at_max.min() > 3.0, "parameter spread missing"
    # Small messages cannot profit from pipelining this much.
    assert speedup[msize == msize.min()].max() < at_max.max()
