"""Regression-error monitoring view (paper §V's MAE/RMSE remark).

Expected shape: GAM and XGBoost model the runtimes tightly on held-out
node counts; KNN's absolute error is much larger (its neighbourhoods
mix process counts) yet its *selection* quality matches — evidence that
argmin selection tolerates correlated model error, which is why the
paper evaluates speed-ups rather than regression metrics.
"""

from repro.experiments.model_errors import model_error_table


def test_model_errors(benchmark, record_exhibit, scale):
    exhibit = benchmark.pedantic(
        model_error_table, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    record_exhibit("model_errors", exhibit)
    rows = {row[0]: row for row in exhibit.rows}
    # The tight learners stay below ~30% median MAPE on unseen nodes.
    assert rows["GAM"][2] < 0.3
    assert rows["XGBoost"][2] < 0.3
    # Every learner models all configurations that had enough samples.
    counts = {row[1] for row in exhibit.rows}
    assert len(counts) == 1
