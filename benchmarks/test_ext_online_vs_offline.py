"""Extension E1: offline ML selection vs online (STAR-MPI) tuning.

Quantifies the paper's §II argument for an *offline* approach: the
online tuner's exploration calls run inside the application, so its
per-call cost over a realistic call count stays well above the offline
selector's, which answers from models before the job starts.
"""

from repro.experiments.extensions import online_vs_offline


def test_ext_online_vs_offline(benchmark, record_exhibit, scale):
    exhibit = benchmark.pedantic(
        online_vs_offline, args=(scale,), rounds=1, iterations=1
    )
    record_exhibit("ext_e1_online_vs_offline", exhibit)
    rows = {row[0]: row for row in exhibit.rows}
    offline = rows["offline ML (paper)"]
    online = rows["online STAR-MPI"]
    assert offline[1] < 1.3, "offline selection should track the oracle"
    assert online[1] > offline[1], "online exploration must cost more"
    assert online[2] > 60.0, "most wasted time should be the online tuner's"
