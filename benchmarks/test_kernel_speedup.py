"""Flat-kernel inference speedup (PR 1 acceptance bar).

The compiled flat-ensemble descent must beat the recursive reference
by >= 10x on a realistic workload: a 200-round depth-6 booster (the
paper's XGBoost configuration) predicting a 10k-row batch. Both paths
are timed best-of-N in the same process, so the ratio is robust to
machine-to-machine variance; bit-parity between them is asserted by
the tier-1 suite (tests/ml/test_kernels.py) and re-checked here.
"""

import time

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor

N_TRAIN = 2000
N_QUERY = 10_000
N_FEATURES = 4  # the instance-feature width used throughout the repo


@pytest.fixture(scope="module")
def booster_and_batch():
    rng = np.random.default_rng(42)
    X = rng.random((N_TRAIN, N_FEATURES))
    y = np.exp(rng.normal(size=N_TRAIN)) * 1e-4
    model = GradientBoostingRegressor(n_rounds=200, max_depth=6, rng=0)
    model.fit(X, y)
    Xq = rng.random((N_QUERY, N_FEATURES))
    return model, Xq


def _best_of(fn, rounds: int) -> float:
    best = np.inf
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_booster_flat_kernel_10x(booster_and_batch):
    model, Xq = booster_and_batch
    # Parity first: a fast-but-wrong kernel must never pass this bench.
    assert np.array_equal(model.predict(Xq), model.predict_recursive(Xq))
    t_fast = _best_of(lambda: model.predict(Xq), rounds=7)
    t_ref = _best_of(lambda: model.predict_recursive(Xq), rounds=3)
    speedup = t_ref / t_fast
    print(
        f"\nflat {t_fast * 1e3:.2f} ms  recursive {t_ref * 1e3:.2f} ms"
        f"  speedup {speedup:.1f}x"
    )
    assert speedup >= 10.0, (
        f"flat kernel only {speedup:.1f}x faster than the recursive path "
        f"({t_fast * 1e3:.2f} ms vs {t_ref * 1e3:.2f} ms)"
    )


def test_booster_predict_latency(benchmark, booster_and_batch):
    model, Xq = booster_and_batch
    out = benchmark(model.predict, Xq)
    assert out.shape == (N_QUERY,)
    # 10k rows x 200 trees in well under a tenth of a second.
    assert benchmark.stats["mean"] < 0.1


def test_forest_flat_kernel_faster(benchmark):
    rng = np.random.default_rng(3)
    X = rng.random((1500, N_FEATURES))
    y = np.exp(rng.normal(size=1500))
    model = RandomForestRegressor(n_trees=64, max_depth=10, rng=1).fit(X, y)
    Xq = rng.random((5000, N_FEATURES))
    assert np.array_equal(model.predict(Xq), model.predict_recursive(Xq))
    out = benchmark(model.predict, Xq)
    assert out.shape == (5000,)
    t_ref = _best_of(lambda: model.predict_recursive(Xq), rounds=3)
    assert benchmark.stats["min"] < t_ref, "flat forest slower than oracle"
