"""Ablation A1: fast vectorised evaluators vs the exact engine.

Quantifies the documented two-tier approximation (DESIGN.md §5.1): for
every algorithm family the engine/fast runtime ratio is computed over a
small instance sample. Tree pipelines at one rank per node must agree
to numerical precision; contended topologies must stay inside the
tolerance band the selection results rely on.
"""

import numpy as np
import pytest

from repro.collectives.registry import make_algorithm
from repro.experiments.report import render_table
from repro.machine.model import NoiseModel
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed

QUIET = tiny_testbed.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))

SAMPLE = [
    ("bcast", "binomial", {"segsize": 4096}),
    ("bcast", "pipeline", {"segsize": 4096}),
    ("bcast", "chain", {"segsize": 4096, "chains": 2}),
    ("bcast", "scatter_ring_allgather", {}),
    ("allreduce", "recursive_doubling", {}),
    ("allreduce", "ring", {}),
    ("allreduce", "rabenseifner", {}),
    ("alltoall", "bruck", {}),
    ("alltoall", "pairwise", {}),
]

SHAPES = [(4, 1), (8, 1), (4, 2), (4, 4)]
MSIZES = [100, 65536, 1 << 20]


def _collect():
    rows = []
    for kind, name, kw in SAMPLE:
        ratios = []
        for shape in SHAPES:
            topo = Topology(*shape)
            for m in MSIZES:
                algo = make_algorithm(kind, name, **kw)
                if not algo.supported(topo, m):
                    continue
                fast = algo.base_time(QUIET, topo, m)
                exact = algo.run_exact(QUIET, topo, m, verify=False).makespan
                ratios.append(exact / fast)
        ratios = np.asarray(ratios)
        rows.append(
            (f"{kind}/{name}", float(ratios.min()), float(np.median(ratios)),
             float(ratios.max()))
        )
    return rows


def test_ablation_fastsim_engine(benchmark, exhibit_dir):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    text = render_table(
        ("algorithm", "min_ratio", "median_ratio", "max_ratio"),
        rows,
        floatfmt=".3f",
        title="Ablation A1: engine/fast runtime ratio",
    )
    print(f"\n{text}\n")
    (exhibit_dir / "ablation_a1.txt").write_text(text + "\n")
    for name, lo, med, hi in rows:
        assert 0.4 < lo and hi < 2.5, f"{name}: ratio band [{lo:.2f},{hi:.2f}]"
        assert 0.6 < med < 1.7, f"{name}: median ratio {med:.2f}"


@pytest.mark.parametrize("p", [4, 8])
def test_uncontended_tree_exactness(p):
    topo = Topology(p, 1)
    algo = make_algorithm("bcast", "binomial", segsize=4096)
    fast = algo.base_time(QUIET, topo, 65536)
    exact = algo.run_exact(QUIET, topo, 65536, verify=False).makespan
    assert exact == pytest.approx(fast, rel=1e-9)
