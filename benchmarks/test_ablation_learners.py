"""Ablation A3: learner robustness (paper §III-C).

The paper's claim: the framework works out of the box with any of KNN,
GAM, XGBoost — while the baselines it rejected (random forest from the
authors' earlier work, plain/log linear regression) fall behind.
"""

import numpy as np

from repro.core.evaluation import evaluate_selector
from repro.core.selector import AlgorithmSelector
from repro.experiments.cache import dataset_cached
from repro.experiments.datasets import DATASETS
from repro.experiments.report import render_table
from repro.experiments.splits import split_dataset
from repro.machine.zoo import get_machine
from repro.ml import (
    PAPER_LEARNERS,
    RandomForestRegressor,
    RidgeRegressor,
)
from repro.mpilib import get_library

LEARNERS = {
    **PAPER_LEARNERS,
    "RandomForest": lambda: RandomForestRegressor(n_trees=50, rng=0),
    "Ridge": lambda: RidgeRegressor(),
    "Ridge-log": lambda: RidgeRegressor(log_target=True),
}


def _run(scale):
    spec = DATASETS["d1"]
    dataset = dataset_cached("d1", scale)
    train, test = split_dataset(dataset, scale)
    library = get_library(spec.library)
    machine = get_machine(spec.machine)
    rows = []
    for name, factory in LEARNERS.items():
        selector = AlgorithmSelector(factory).fit(train)
        result = evaluate_selector(selector, test, library, machine)
        rows.append(
            (
                name,
                result.mean_speedup,
                float(np.median(result.normalized_predicted)),
            )
        )
    return rows


def test_ablation_learners(benchmark, scale, exhibit_dir):
    rows = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)
    text = render_table(
        ("learner", "mean_speedup_vs_default", "median_norm_runtime"),
        rows,
        floatfmt=".3f",
        title="Ablation A3: learner robustness on d1",
    )
    print(f"\n{text}\n")
    (exhibit_dir / "ablation_a3.txt").write_text(text + "\n")
    by_name = {name: (speedup, med) for name, speedup, med in rows}
    # All paper learners deliver out of the box.
    for name in PAPER_LEARNERS:
        assert by_name[name][0] > 1.1, f"{name} failed to beat the default"
    # The paper's robustness claim: the three chosen learners land in a
    # tight band of each other.
    chosen = [by_name[n][0] for n in PAPER_LEARNERS]
    assert max(chosen) / min(chosen) < 1.5
    # Plain linear regression is not competitive (median selection
    # quality clearly worse than the chosen learners').
    best_med = min(by_name[n][1] for n in PAPER_LEARNERS)
    assert by_name["Ridge"][1] > best_med
