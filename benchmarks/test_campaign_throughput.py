"""Campaign + training throughput (the parallel engine's workloads).

Tracks how fast the benchmark-campaign loop produces samples and how
fast the per-configuration ensemble trains — the two phases the paper
needs to stay cheap for the offline tuning story to hold. The parallel
path must agree bit-for-bit with serial (asserted here cheaply; the
exhaustive check lives in the tier-1 suite).
"""

import numpy as np
import pytest

from repro.bench.repro_mpi import BenchmarkSpec
from repro.bench.runner import DatasetRunner, GridSpec
from repro.core.selector import AlgorithmSelector
from repro.machine.zoo import tiny_testbed
from repro.ml import KNNRegressor
from repro.mpilib import get_library

GRID = GridSpec(nodes=(2, 4, 8), ppns=(1, 2), msizes=(16, 1024, 65536))


def _runner():
    return DatasetRunner(
        tiny_testbed, get_library("Open MPI"),
        BenchmarkSpec(max_nreps=10), seed=3,
    )


def test_campaign_throughput(benchmark):
    ds = benchmark(_runner().run, "bcast", GRID, name="bench")
    samples_per_s = len(ds) / benchmark.stats["mean"]
    print(f"\ncampaign: {samples_per_s:,.0f} samples/s ({len(ds)} samples)")
    assert samples_per_s > 200, "campaign loop too slow for paper-scale grids"


def test_campaign_parallel_matches_serial(benchmark):
    serial = _runner().run("bcast", GRID, name="bench")
    parallel = benchmark(
        _runner().run, "bcast", GRID, name="bench", n_jobs=4
    )
    np.testing.assert_array_equal(serial.time, parallel.time)


@pytest.fixture(scope="module")
def training_set():
    return _runner().run("bcast", GRID, name="bench")


def test_selector_training_throughput(benchmark, training_set):
    selector = benchmark(
        AlgorithmSelector(lambda: KNNRegressor(k=3)).fit, training_set
    )
    assert selector.num_models > 10
