"""Prediction latency (paper §II deployment requirement).

"If predictions can be done in the order of seconds, the approach will
work seamlessly with SLURM. However, when targeting online approaches,
the prediction time needs to be in the microsecond range."

This bench measures the trained selector's per-instance query latency
for each learner — the offline (SLURM) budget must hold with orders of
magnitude to spare; the microsecond online budget must (as the paper
implies) NOT hold, motivating the offline design.
"""

import pytest

from repro.core.selector import AlgorithmSelector
from repro.experiments.cache import dataset_cached
from repro.experiments.splits import split_dataset
from repro.ml import PAPER_LEARNERS


@pytest.fixture(scope="module")
def selectors(scale):
    dataset = dataset_cached("d1", scale)
    train, _ = split_dataset(dataset, scale)
    return {
        name: AlgorithmSelector(factory).fit(train)
        for name, factory in PAPER_LEARNERS.items()
    }


@pytest.mark.parametrize("learner", list(PAPER_LEARNERS))
def test_prediction_latency(benchmark, selectors, learner):
    selector = selectors[learner]
    cfg = benchmark(selector.select, 13, 16, 65536)
    assert cfg is not None
    # SLURM-style offline deployment: far below one second per query.
    assert benchmark.stats["mean"] < 1.0, "query too slow for job prolog use"
    # And (the paper's caveat) far above the microsecond online budget.
    assert benchmark.stats["mean"] > 1e-6
