"""Table IV: overall prediction quality across all eight datasets.

Paper findings to reproduce:

* (IVa) all three learners beat Open MPI's default substantially on the
  Open MPI datasets (paper means: KNN 1.37, GAM 1.48, XGBoost 1.41),
* Intel MPI datasets sit near 1.0 (nothing to gain over a tuned table),
* (IVb) the small training split loses almost nothing.
"""

import numpy as np
import pytest

from repro.experiments.tables import table4

OMPI_DATASETS = ("d1", "d2", "d3", "d4", "d8")
INTEL_DATASETS = ("d5", "d6", "d7")


@pytest.mark.parametrize("small", [False, True], ids=["IVa-large", "IVb-small"])
def test_table4_speedups(benchmark, record_exhibit, scale, small):
    exhibit = benchmark.pedantic(
        table4, args=(scale,), kwargs={"small": small}, rounds=1, iterations=1
    )
    record_exhibit("table4b" if small else "table4a", exhibit)
    dids = exhibit.columns[1:-1]
    for row in exhibit.rows:
        learner, *cells, mean = row
        per_did = dict(zip(dids, cells, strict=True))
        ompi_mean = np.mean([per_did[d] for d in OMPI_DATASETS])
        intel_mean = np.mean([per_did[d] for d in INTEL_DATASETS])
        assert ompi_mean > 1.1, (
            f"{learner}: expected clear gains on Open MPI datasets, "
            f"got {ompi_mean:.2f}"
        )
        # The paper itself dips below 1.0 on Intel datasets (e.g. KNN on
        # d6: 0.84): keeping up means "no catastrophic loss", not a win.
        assert intel_mean > 0.75, (
            f"{learner}: fell too far behind Intel's tuned default "
            f"({intel_mean:.2f})"
        )
        assert min(per_did[d] for d in INTEL_DATASETS) > 0.55, (
            f"{learner}: catastrophic loss on an Intel dataset"
        )
        assert mean > 1.0, f"{learner}: overall mean speed-up must exceed 1"


def test_table4_small_split_loses_little(scale):
    large = table4(scale, dids=("d1", "d4"))
    small = table4(scale, dids=("d1", "d4"), small=True)
    for row_l, row_s in zip(large.rows, small.rows, strict=True):
        assert row_s[-1] > row_l[-1] * 0.75, (
            f"{row_l[0]}: small split degraded too much "
            f"({row_s[-1]:.2f} vs {row_l[-1]:.2f})"
        )
