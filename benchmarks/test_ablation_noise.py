"""Ablation A4: selection quality under growing measurement noise.

The framework must keep beating the default when the training data is
noisy (real benchmark data always is). Expected: stable gains at
realistic noise levels (sigma <= 0.1) and graceful degradation beyond.
"""

from repro.experiments.extensions import noise_sensitivity


def test_ablation_noise(benchmark, record_exhibit, scale):
    exhibit = benchmark.pedantic(
        noise_sensitivity, args=(scale,), rounds=1, iterations=1
    )
    record_exhibit("ablation_a4_noise", exhibit)
    rows = {row[0]: row for row in exhibit.rows}
    learners = exhibit.columns[1:-1]
    # Realistic noise: every learner still clearly beats the default.
    for sigma in (0.0, 0.03, 0.1):
        for j, learner in enumerate(learners, start=1):
            assert rows[sigma][j] > 1.2, (
                f"{learner} lost its edge already at sigma={sigma}"
            )
    # Heavy noise may hurt but must not collapse below the default.
    for j, _learner in enumerate(learners, start=1):
        assert rows[0.3][j] > 0.9
