"""Benchmark-suite plumbing.

Each benchmark regenerates one paper exhibit (at CI scale by default;
set ``REPRO_SCALE=paper`` for the full grids), prints it, and writes the
rendered text under ``results/exhibits/`` so EXPERIMENTS.md can link to
concrete outputs. Datasets are shared through the on-disk cache.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

os.environ.setdefault("REPRO_CACHE_DIR", "results/datasets")

from repro.experiments.datasets import Scale  # noqa: E402


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running benchmarks"
    )


@pytest.fixture(scope="session")
def scale() -> Scale:
    return Scale(os.environ.get("REPRO_SCALE", "ci"))


@pytest.fixture(scope="session")
def exhibit_dir() -> Path:
    path = Path("results/exhibits")
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture
def record_exhibit(exhibit_dir):
    """Print a regenerated exhibit and persist its rendering."""

    def _record(name: str, exhibit) -> None:
        text = exhibit.render()
        print(f"\n{text}\n")
        (exhibit_dir / f"{name}.txt").write_text(text + "\n")

    return _record
