"""Figure 8: best vs default vs predicted — MPI_Bcast, Open MPI, SuperMUC-NG.

Paper finding: the predictor selects better broadcast algorithms in
several regions; default and prediction are otherwise comparable.
"""

import numpy as np

from repro.experiments.figures import figure8


def test_fig8_bcast_supermuc(benchmark, record_exhibit, scale):
    exhibit = benchmark.pedantic(figure8, args=(scale,), rounds=1, iterations=1)
    record_exhibit("fig8", exhibit)
    pred = exhibit.column("norm_predicted")
    assert np.median(pred) < 1.5
    assert np.mean(pred) <= np.mean(exhibit.column("norm_default")) * 1.05
