"""Figure 5: predicted broadcast algorithm per configuration and learner.

Paper finding: KNN, GAM and XGBoost produce genuinely different
selection maps, and the predictions use the whole algorithm portfolio
(all ids appear somewhere), not just one or two favourites.
"""

from repro.experiments.figures import figure5


def test_fig5_algorithm_map(benchmark, record_exhibit, scale):
    exhibit = benchmark.pedantic(figure5, args=(scale,), rounds=1, iterations=1)
    record_exhibit("fig5", exhibit)
    algids = {int(a) for a in exhibit.column("algid")}
    assert len(algids) >= 3, "portfolio collapsed to too few algorithms"
    assert 8 not in algids, "the excluded broken algorithm must never appear"
    learners = set(exhibit.column("learner"))
    assert learners == {"KNN", "GAM", "XGBoost"}
