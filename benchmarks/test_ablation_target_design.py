"""Ablation A2: regression-target design (paper §III-A).

Compares the paper's chosen design — one *runtime* regressor per
configuration — against the two designs it argues against:

* speed-up-ratio regression against the default strategy (the authors'
  previous work [9]),
* direct best-label prediction.

Observed shape: on this substrate the three designs land within a few
percent of each other at paper scale (all ~2.0x over the default on
d1). The paper's preference for direct runtimes is about *robustness*
on real, noisy clusters — ratio targets inherit the default strategy's
discontinuities and label targets are class-imbalanced (verified in
``tests/core/test_ablations.py``) — failure modes a smooth simulated
substrate does not manufacture. The bench therefore asserts the paper
design is never *worse* than the alternatives by a material margin.
"""

import numpy as np

from repro.core.ablations import BestLabelSelector, SpeedupRatioSelector
from repro.core.evaluation import evaluate_selector
from repro.core.selector import AlgorithmSelector
from repro.experiments.cache import dataset_cached
from repro.experiments.datasets import DATASETS
from repro.experiments.report import render_table
from repro.experiments.splits import split_dataset
from repro.machine.zoo import get_machine
from repro.ml import KNNRegressor
from repro.mpilib import get_library


def _run(scale):
    spec = DATASETS["d1"]
    dataset = dataset_cached("d1", scale)
    train, test = split_dataset(dataset, scale)
    library = get_library(spec.library)
    machine = get_machine(spec.machine)

    designs = {
        "runtime-regression (paper)": AlgorithmSelector(
            lambda: KNNRegressor()
        ).fit(train),
        "speedup-ratio regression [9]": SpeedupRatioSelector(
            lambda: KNNRegressor(), library, machine
        ).fit(train),
        "best-label prediction": BestLabelSelector().fit(train),
    }
    rows = []
    for name, selector in designs.items():
        result = evaluate_selector(selector, test, library, machine)
        rows.append(
            (
                name,
                result.mean_speedup,
                float(np.median(result.normalized_predicted)),
                float(np.quantile(result.normalized_predicted, 0.9)),
            )
        )
    return rows


def test_ablation_target_design(benchmark, record_exhibit, scale, exhibit_dir):
    rows = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)
    text = render_table(
        ("design", "mean_speedup_vs_default", "median_norm", "p90_norm"),
        rows,
        floatfmt=".3f",
        title="Ablation A2: regression-target designs on d1",
    )
    print(f"\n{text}\n")
    (exhibit_dir / "ablation_a2.txt").write_text(text + "\n")
    by_name = {name: speedup for name, speedup, *_ in rows}
    paper = by_name["runtime-regression (paper)"]
    assert paper >= by_name["speedup-ratio regression [9]"] * 0.85
    assert paper >= by_name["best-label prediction"] * 0.85
    assert paper > 1.0
