"""Figure 4: best vs default vs predicted — MPI_Bcast, Open MPI, Hydra.

Paper finding: the GAM-predicted algorithm tracks the exhaustive-search
best closely and clearly outperforms Open MPI's built-in decision
logic on the held-out (odd) node counts.
"""

import numpy as np

from repro.experiments.figures import figure4


def test_fig4_bcast_hydra(benchmark, record_exhibit, scale):
    exhibit = benchmark.pedantic(figure4, args=(scale,), rounds=1, iterations=1)
    record_exhibit("fig4", exhibit)
    pred = exhibit.column("norm_predicted")
    default = exhibit.column("norm_default")
    assert np.median(pred) < 1.3, "prediction should track the oracle"
    assert np.mean(default) > np.mean(pred), "prediction must beat the default"
