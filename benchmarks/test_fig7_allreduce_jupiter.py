"""Figure 7: best vs default vs predicted — MPI_Allreduce, Open MPI, Jupiter.

Paper finding: the Open MPI default is decent for allreduce, but there
is a message-size band (around 16 KiB in the paper) where the predicted
algorithm is significantly faster.
"""

import numpy as np

from repro.experiments.figures import figure7


def test_fig7_allreduce_jupiter(benchmark, record_exhibit, scale):
    exhibit = benchmark.pedantic(figure7, args=(scale,), rounds=1, iterations=1)
    record_exhibit("fig7", exhibit)
    pred = exhibit.column("norm_predicted")
    default = exhibit.column("norm_default")
    msize = exhibit.column("msize")
    assert np.median(pred) < 1.3
    # Somewhere in the mid-size band the default loses noticeably.
    gains = default / pred
    assert gains.max() > 1.1, "no band where prediction wins was found"
