"""Table I: hardware overview of the simulated machine zoo."""

from repro.experiments.tables import table1


def test_table1_machines(benchmark, record_exhibit):
    exhibit = benchmark(table1)
    record_exhibit("table1", exhibit)
    assert len(exhibit.rows) == 3
