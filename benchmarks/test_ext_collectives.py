"""Extension E3: the framework on MPI_Reduce and MPI_Allgather.

The paper claims its approach is generic (§II); datasets dx1/dx2 apply
the unchanged pipeline to two more collectives, where it must again at
least match the default decision logic.
"""

from repro.experiments.extensions import extension_speedups


def test_ext_collectives(benchmark, record_exhibit, scale):
    exhibit = benchmark.pedantic(
        extension_speedups, args=(scale,), rounds=1, iterations=1
    )
    record_exhibit("ext_e3_collectives", exhibit)
    for row in exhibit.rows:
        learner, *cells, mean = row
        assert mean > 1.0, f"{learner}: must beat the default on average"
