"""Extension E4: tuning under MVAPICH's size-class constraint.

The paper notes MVAPICH selects per message-size class rather than per
instance (§IV-B). Expected: our models still tune it well — one choice
per class recovers most of the unconstrained per-instance gains — and
beat the factory class table.
"""

from repro.experiments.extensions import mvapich_class_tuning


def test_ext_mvapich_classes(benchmark, record_exhibit, scale):
    exhibit = benchmark.pedantic(
        mvapich_class_tuning, args=(scale,), rounds=1, iterations=1
    )
    record_exhibit("ext_e4_mvapich_classes", exhibit)
    rows = {row[0]: row for row in exhibit.rows}
    factory = rows["factory class table"][1]
    class_tuned = rows["class-tuned (ours)"][1]
    per_instance = rows["per-instance (ours)"][1]
    assert per_instance <= class_tuned + 0.05, "constraint cannot help"
    assert class_tuned < factory, "class tuning must beat the factory table"
    assert class_tuned < 1.6, "three tuned regimes should be near-oracle"
