"""Serving-layer throughput: batched/cached recommend vs the cold path.

The serving acceptance bars at batch 64: the batched (one vectorized
selector call) and cached (L1 hit) paths must each deliver at least 5x
the throughput of 64 sequential cold ``AutoTuner.recommend`` calls,
and the compiled decision-table tier must deliver at least 5x the
all-L1-hit cached path on top — while returning bit-identical
recommendations throughout. The speedups land in ``BENCH_<pr>.json``
(via ``scripts/bench_report.py``) and are guarded by the regression
gate (``serve_batch64_speedup_x``, ``serve_cached_speedup_x``,
``serve_compiled_speedup_x``).
"""

from __future__ import annotations

import time

import pytest

from repro.bench.repro_mpi import BenchmarkSpec
from repro.bench.runner import GridSpec
from repro.core.tuner import AutoTuner
from repro.machine.zoo import tiny_testbed
from repro.mpilib import get_library
from repro.serve import ModelRegistry, PredictionService

#: 4 node counts x 2 ppn x 8 message sizes = the batch of 64
QUERIES = [
    (n, p, m)
    for n in (2, 4, 6, 8)
    for p in (1, 2)
    for m in (0, 64, 512, 4096, 32768, 262144, 1 << 20, 4 << 20)
]
INSTANCES = [("bcast", n, p, m) for n, p, m in QUERIES]


@pytest.fixture(scope="module")
def tuned():
    tuner = AutoTuner(
        tiny_testbed, get_library("Open MPI"), "bcast",
        learner="KNN", bench_spec=BenchmarkSpec(max_nreps=5), seed=7,
    )
    tuner.benchmark(
        GridSpec(nodes=(2, 4, 8), ppns=(1, 2), msizes=(64, 4096, 262144))
    )
    tuner.train()
    return tuner


@pytest.fixture(scope="module")
def registry(tuned):
    registry = ModelRegistry(tiny_testbed, tuned.library)
    registry.publish(tuned.servable(), tag="bench")
    return registry


@pytest.fixture(scope="module")
def rules_registry(tuned, tmp_path_factory):
    """A rules-backed registry: full msize coverage for the L0 tier.

    The selector grid only covers 18 of the 64 bench queries exactly;
    the tuner's exported rules table covers every message size, which
    is the deployment shape the compiled tier is built for.
    """
    path = tmp_path_factory.mktemp("bench-rules") / "bcast.conf"
    tuned.write_rules(str(path), nodes=8, ppn=2)
    registry = ModelRegistry(tiny_testbed, tuned.library)
    registry.load_rules(path)
    return registry


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_batch64_meets_5x_bar_and_is_bit_identical(tuned, registry):
    expected = [tuned.recommend(n, p, m) for n, p, m in QUERIES]

    # bit-identity: batching and caching never change an answer
    service = PredictionService(registry)
    first = service.recommend_many(INSTANCES)
    assert [rec.config for rec in first] == expected
    again = service.recommend_many(INSTANCES)
    assert [rec.config for rec in again] == expected
    assert all(rec.cached for rec in again)

    cold_s = _best_of(
        lambda: [tuned.recommend(n, p, m) for n, p, m in QUERIES], 3
    )
    batch_s = _best_of(
        lambda: PredictionService(registry).recommend_many(INSTANCES), 5
    )
    warm = PredictionService(registry)
    warm.recommend_many(INSTANCES)
    cached_s = _best_of(lambda: warm.recommend_many(INSTANCES), 7)

    batch_x = cold_s / batch_s
    cached_x = cold_s / cached_s
    print(
        f"\nserve batch=64: cold {cold_s * 1e3:.2f} ms, "
        f"batched {batch_s * 1e3:.2f} ms ({batch_x:.1f}x), "
        f"cached {cached_s * 1e6:.0f} us ({cached_x:.1f}x)"
    )
    assert batch_x >= 5.0, f"batched path only {batch_x:.1f}x over cold"
    assert cached_x >= 5.0, f"cached path only {cached_x:.1f}x over cold"


def test_compiled_batch64_meets_5x_bar_over_cached(tuned, registry,
                                                   rules_registry):
    """The L0 tier beats even the all-L1-hit path by >= 5x at batch 64.

    The 5x acceptance bar holds for the C-kernel build (what the gate's
    ``serve_compiled_speedup_x`` measures); the numpy twin under
    ``REPRO_NO_CKERNEL=1`` typically lands ~5x too but is only held to
    3x here — its job is bit-identical coverage, not the record.
    """
    from repro.ml import _ckernel

    bar = 5.0 if _ckernel.available() else 3.0
    rules_model = rules_registry.get("bcast").model
    import numpy as np

    expected = rules_model.select_configs(
        None, None, np.asarray([m for _, _, m in QUERIES], dtype=np.int64)
    )

    compiled = PredictionService(rules_registry, compiled=True)
    first = compiled.recommend_many(INSTANCES)
    # full coverage and bit-identity to the interpreted bracket
    assert all(rec.compiled for rec in first)
    assert [rec.config for rec in first] == expected

    warm = PredictionService(registry)
    warm.recommend_many(INSTANCES)
    cached_s = _best_of(lambda: warm.recommend_many(INSTANCES), 30)
    compiled_s = _best_of(lambda: compiled.recommend_many(INSTANCES), 50)

    compiled_x = cached_s / compiled_s
    print(
        f"\nserve batch=64: cached {cached_s * 1e6:.0f} us, "
        f"compiled {compiled_s * 1e6:.0f} us ({compiled_x:.1f}x)"
    )
    assert compiled_x >= bar, (
        f"compiled path only {compiled_x:.1f}x over cached (bar {bar}x)"
    )


def test_serve_batched_recommend_64(benchmark, registry):
    recs = benchmark(
        lambda: PredictionService(registry).recommend_many(INSTANCES)
    )
    assert len(recs) == 64 and all(r.source == "model" for r in recs)


def test_serve_cached_recommend_64(benchmark, registry):
    warm = PredictionService(registry)
    warm.recommend_many(INSTANCES)
    recs = benchmark(warm.recommend_many, INSTANCES)
    assert all(rec.cached for rec in recs)


def test_serve_compiled_recommend_64(benchmark, rules_registry):
    service = PredictionService(rules_registry, compiled=True)
    service.recommend_many(INSTANCES)  # builds the table once
    recs = benchmark(service.recommend_many, INSTANCES)
    assert all(rec.compiled for rec in recs)
